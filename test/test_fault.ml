(* Tests for Icdb_fault: plan generation, the invariant campaign, the
   shrinker, and a regression corpus of (formerly bug-revealing) fault
   plans that must stay green. *)

module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span
module Protocol = Icdb_workload.Protocol
module Plan = Icdb_fault.Plan
module Campaign = Icdb_fault.Campaign
module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine
module Site = Icdb_net.Site
module Lock = Icdb_lock.Lock_table
module Federation = Icdb_core.Federation
module Monitor = Icdb_core.Monitor

let violation_strings (o : Campaign.outcome) =
  List.map (fun v -> Format.asprintf "%a" Campaign.pp_violation v) o.violations

let check_clean ~protocol plan =
  let o = Campaign.run_plan ~protocol plan in
  Alcotest.(check (list string))
    (Protocol.name protocol ^ " invariants under " ^ Plan.to_string plan)
    [] (violation_strings o)

(* --- regression corpus: shrunken reproducers of the bugs this code once
   had; each plan drove a specific failure before the fix. --- *)

(* Overlapping outages on one site: the first outage's stale scheduled
   restart used to revive the site in the middle of the second outage. *)
let overlapping_crash_plan =
  {
    Plan.plan_seed = 1L;
    events =
      [
        Plan.Site_crash { site = 0; at = 5.0; duration = 20.0 };
        Plan.Site_crash { site = 0; at = 15.0; duration = 60.0 };
      ];
  }

(* An early crash racing transaction starts: [begin_txn] on a just-crashed
   site used to raise [Failure "site is down"] straight through the worker
   fiber. *)
let early_crash_plan =
  {
    Plan.plan_seed = 2L;
    events = [ Plan.Site_crash { site = 0; at = 2.0; duration = 30.0 } ];
  }

let central_crash_plan phase_idx =
  { Plan.plan_seed = 3L; events = [ Plan.Central_crash { txn = 3; phase_idx } ] }

(* A central crash at the decision point plus a site outage over the same
   window: recovery must push the decision to a site that is down when it
   starts. *)
let central_plus_site_plan =
  {
    Plan.plan_seed = 4L;
    events =
      [
        Plan.Central_crash { txn = 2; phase_idx = 2 };
        Plan.Site_crash { site = 1; at = 10.0; duration = 40.0 };
      ];
  }

(* Message chaos without crashes: loss (at-least-once retransmission),
   duplicated deliveries (receiver dedup), and a latency spike. *)
let lossy_dup_plan =
  {
    Plan.plan_seed = 5L;
    events =
      [
        Plan.Loss_burst { site = 0; at = 0.0; duration = 150.0; loss = 0.3 };
        Plan.Duplication { site = 1; at = 0.0; duration = 150.0; probability = 0.3 };
        Plan.Latency_spike { site = 2; at = 50.0; duration = 100.0; factor = 5.0 };
      ];
  }

let corpus =
  [
    overlapping_crash_plan;
    early_crash_plan;
    central_crash_plan 0;
    central_crash_plan 1;
    central_crash_plan 2;
    central_plus_site_plan;
    lossy_dup_plan;
  ]

let test_corpus protocol () = List.iter (check_clean ~protocol) corpus

(* --- plan generation --- *)

let test_generate_deterministic () =
  let gen () = Plan.generate ~seed:99L ~n_sites:3 ~n_txns:40 ~horizon:300.0 () in
  Alcotest.(check string) "same seed, same plan" (Plan.to_string (gen ()))
    (Plan.to_string (gen ()));
  let other = Plan.generate ~seed:100L ~n_sites:3 ~n_txns:40 ~horizon:300.0 () in
  Alcotest.(check bool) "different seed, different plan" true
    (Plan.to_string (gen ()) <> Plan.to_string other)

let test_remove_nth () =
  let plan = central_plus_site_plan in
  Alcotest.(check int) "drop first" 1 (Plan.length (Plan.remove_nth plan 0));
  Alcotest.(check int) "drop second" 1 (Plan.length (Plan.remove_nth plan 1));
  (match (Plan.remove_nth plan 0).events with
  | [ Plan.Site_crash _ ] -> ()
  | _ -> Alcotest.fail "expected the site crash to survive");
  Alcotest.(check int) "empty stays empty" 0 (Plan.length (Plan.remove_nth Plan.empty 0))

let test_phase_names () =
  Alcotest.(check string) "flat executed" "executed" (Plan.phase_name ~mlt:false 0);
  Alcotest.(check string) "flat voted" "voted" (Plan.phase_name ~mlt:false 1);
  Alcotest.(check string) "flat decided" "decided" (Plan.phase_name ~mlt:false 2);
  Alcotest.(check string) "mlt action" "action-0" (Plan.phase_name ~mlt:true 0);
  Alcotest.(check string) "mlt decided" "decided" (Plan.phase_name ~mlt:true 2)

(* --- campaign --- *)

let test_run_plan_deterministic () =
  let run () = Campaign.run_plan ~protocol:Protocol.Before central_plus_site_plan in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "same violations" (violation_strings a)
    (violation_strings b);
  match (a.report, b.report) with
  | Some ra, Some rb ->
    Alcotest.(check int) "same started" ra.started rb.started;
    Alcotest.(check int) "same committed" ra.committed rb.committed;
    Alcotest.(check int) "same aborted" ra.aborted rb.aborted;
    Alcotest.(check int) "same killed" a.killed b.killed;
    Alcotest.(check int) "same money" ra.money_after rb.money_after;
    Alcotest.(check int) "same messages" ra.messages rb.messages
  | _ -> Alcotest.fail "both runs should produce reports"

let test_central_crash_kills_and_recovers () =
  (* Phase 2 ("decided") leaves prepared locals in doubt; recovery resolves
     them from the journal, and doing so twice is a no-op (the invariant
     suite includes both checks). *)
  let o = Campaign.run_plan ~protocol:Protocol.Two_phase (central_crash_plan 2) in
  Alcotest.(check (list string)) "clean" [] (violation_strings o);
  Alcotest.(check int) "one coordinator killed" 1 o.killed;
  match o.report with
  | Some r ->
    Alcotest.(check int) "accounting closes" r.started (r.committed + r.aborted + 1)
  | None -> Alcotest.fail "expected a report"

let test_fault_metrics_counted () =
  let registry = Registry.create () in
  let o =
    Campaign.run_plan ~registry ~protocol:Protocol.Before overlapping_crash_plan
  in
  Alcotest.(check (list string)) "clean" [] (violation_strings o);
  let crashes =
    Registry.count
      (Registry.counter registry ~labels:[ ("kind", "site-crash") ]
         "icdb_fault_injected_total")
  in
  Alcotest.(check bool) "site crashes injected and counted" true (crashes >= 1)

let test_campaign_smoke () =
  (* A small seeded sweep per protocol: every plan must satisfy the whole
     invariant suite. *)
  List.iter
    (fun protocol ->
      let stats = Campaign.run_protocol ~seed:42L ~plans:4 protocol in
      Alcotest.(check int)
        (Protocol.name protocol ^ " campaign violations")
        0
        (List.length stats.cp_failures))
    Protocol.all

let test_campaign_stats_deterministic () =
  let run () = Campaign.run_protocol ~seed:7L ~plans:3 Protocol.Presumed_abort in
  let a = run () and b = run () in
  Alcotest.(check int) "same event count" a.cp_events b.cp_events;
  Alcotest.(check (list (pair string int))) "same class histogram" a.cp_by_class
    b.cp_by_class;
  Alcotest.(check int) "same failures" (List.length a.cp_failures)
    (List.length b.cp_failures)

let test_shrink_fixpoint_on_clean_plan () =
  (* A plan that violates nothing shrinks to itself: no removal can make a
     clean plan violating, so the greedy loop terminates immediately. *)
  let shrunk = Campaign.shrink ~protocol:Protocol.After lossy_dup_plan in
  Alcotest.(check string) "unchanged" (Plan.to_string lossy_dup_plan)
    (Plan.to_string shrunk);
  Alcotest.(check int) "empty plan" 0 (Plan.length (Campaign.shrink ~protocol:Protocol.After Plan.empty))

(* --- flight recorder ------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_flight_dump_on_violation () =
  (* Re-introduce the PR-5 begin_txn bug's failure mode: an exception
     escaping a coordinator fiber mid-protocol. The campaign must classify
     the run as crashed and dump the flight recorder, with the faulting
     event in the dump's tail. *)
  let o =
    Campaign.run_plan ~protocol:Protocol.Before
      ~extra_setup:(fun _engine fed ->
        fed.Federation.central_fail <-
          (fun ~gid phase ->
            if phase = "decided" then begin
              Tracer.instant fed.Federation.tracer ~actor:"central"
                (Span.Mark (Printf.sprintf "bug:begin_txn g%d site is down" gid));
              raise (Failure "site is down")
            end))
      Plan.empty
  in
  (match o.violations with
  | [ Campaign.Run_crashed msg ] ->
    Alcotest.(check bool) "crash message carried" true (contains msg "site is down")
  | vs ->
    Alcotest.failf "expected Run_crashed, got [%s]"
      (String.concat "; " (List.map (Format.asprintf "%a" Campaign.pp_violation) vs)));
  match o.flight with
  | None -> Alcotest.fail "expected a flight-recorder dump"
  | Some dump ->
    Alcotest.(check bool) "dump has the header" true (contains dump "flight recorder:");
    (* The faulting event sits in the dump's tail: the ring stops at the
       moment the exception escaped. *)
    let lines = String.split_on_char '\n' dump in
    let tail =
      let n = List.length lines in
      List.filteri (fun i _ -> i >= n - 15) lines |> String.concat "\n"
    in
    Alcotest.(check bool) "faulting event in the tail" true
      (contains tail "bug:begin_txn")

let test_clean_run_has_no_flight_dump () =
  let o = Campaign.run_plan ~protocol:Protocol.Before lossy_dup_plan in
  Alcotest.(check (list string)) "clean" [] (violation_strings o);
  Alcotest.(check bool) "no dump on a clean run" true (o.flight = None);
  Alcotest.(check (list string)) "no monitor trips" []
    (List.map (fun (t : Monitor.trip) -> t.m_monitor) o.trips)

(* --- online monitors: hand-built violation plans -------------------------- *)

(* A bare two-site federation on a fresh engine, monitors attached with a
   never-finishing predicate so the watchdog keeps watching for as long as
   other events are pending. *)
let monitored_fed () =
  let eng = Sim.create () in
  let registry = Registry.create () in
  let fed =
    Federation.create eng ~registry
      [ Db.default_config ~site_name:"s0"; Db.default_config ~site_name:"s1" ]
  in
  let m = Monitor.attach fed ~finished:(fun () -> false) in
  (eng, fed, m)

let trip_count registry name =
  Registry.count
    (Registry.counter registry ~labels:[ ("monitor", name) ]
       "icdb_monitor_trips_total")

let test_money_monitor_first_trip () =
  let eng, fed, m = monitored_fed () in
  let db = Site.db (Federation.site fed "s0") in
  Db.load db [ ("x", 100) ];
  (* An unbalanced local commit: +7 appears from nowhere. The delta hook
     feeds the drift; the first quiescent watchdog tick must trip. *)
  Fiber.spawn eng (fun () ->
      let txn = Db.begin_txn db in
      (match Db.increment db txn ~key:"x" ~delta:7 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "increment refused");
      match Db.commit db txn with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "commit refused");
  Sim.run eng;
  (match Monitor.first_trip m "money" with
  | Some t ->
    Alcotest.(check (float 1e-9)) "first trip at the first tick" 20.0 t.m_time;
    Alcotest.(check bool) "detail names the drift" true (contains t.m_detail "+7")
  | None -> Alcotest.fail "money monitor did not trip");
  Alcotest.(check int) "trip metric bumped once" 1
    (trip_count fed.Federation.registry "money")

let test_stuck_monitor_first_trip () =
  let eng, fed, m = monitored_fed () in
  (* A journal entry that nothing ever decides or closes, with unrelated
     activity keeping the engine alive past the stuck threshold. *)
  Federation.journal_open fed ~gid:1 ~protocol:"2pc";
  ignore (Sim.schedule eng ~delay:500.0 (fun () -> ()));
  Sim.run eng;
  (match Monitor.first_trip m "stuck" with
  | Some t ->
    Alcotest.(check (float 1e-9)) "trips exactly at the threshold" 120.0 t.m_time;
    Alcotest.(check bool) "detail names the oldest entry" true (contains t.m_detail "g1")
  | None -> Alcotest.fail "stuck monitor did not trip");
  Alcotest.(check int) "trip metric bumped once" 1
    (trip_count fed.Federation.registry "stuck");
  (* One-shot: the later ticks must not re-trip. *)
  Alcotest.(check int) "single trip recorded" 1 (List.length (Monitor.trips m))

let test_lock_leak_monitor_first_trip () =
  let eng, fed, m = monitored_fed () in
  (* A global-CC lock granted and never released, no transaction alive. *)
  let obj = Lock.intern fed.Federation.global_cc "acct-3" in
  Alcotest.(check bool) "uncontended grant" true
    (Lock.try_acquire fed.Federation.global_cc ~owner:99 ~obj
       ~mode:Icdb_lock.Mode.Exclusive);
  Sim.run eng;
  (match Monitor.first_trip m "lock-leak" with
  | Some t ->
    Alcotest.(check (float 1e-9)) "first quiescent tick" 20.0 t.m_time;
    Alcotest.(check bool) "detail counts the leak" true (contains t.m_detail "1 global")
  | None -> Alcotest.fail "lock-leak monitor did not trip");
  Alcotest.(check int) "trip metric bumped once" 1
    (trip_count fed.Federation.registry "lock-leak")

let test_pin_drift_monitor_first_trip () =
  let eng, fed, m = monitored_fed () in
  let db = Site.db (Federation.site fed "s0") in
  Db.load db [ ("x", 1) ];
  (* Hold a buffer pin across the watchdog tick: with_page pins for the
     duration of the callback, and the callback runs the clock forward. *)
  Icdb_storage.Buffer_pool.with_page (Db.buffer_pool db) 0 ~write:false (fun _ ->
      Sim.run eng);
  (match Monitor.first_trip m "pin-drift" with
  | Some t ->
    Alcotest.(check (float 1e-9)) "first quiescent tick" 20.0 t.m_time;
    Alcotest.(check bool) "detail names the site" true (contains t.m_detail "s0")
  | None -> Alcotest.fail "pin-drift monitor did not trip");
  Alcotest.(check int) "trip metric bumped once" 1
    (trip_count fed.Federation.registry "pin-drift")

let test_monitor_quiet_on_healthy_run () =
  (* The corpus' lossy plan completes cleanly: no monitor may trip, and the
     lazily-created trip counter must not even exist in the registry. *)
  let registry = Registry.create () in
  let o = Campaign.run_plan ~registry ~protocol:Protocol.Two_phase lossy_dup_plan in
  Alcotest.(check (list string)) "clean" [] (violation_strings o);
  Alcotest.(check int) "no trips" 0 (List.length o.trips);
  let snapshot = Registry.snapshot registry in
  Alcotest.(check bool) "no trip metric materialised" true
    (List.for_all
       (fun ((k : Registry.key), _) -> k.name <> "icdb_monitor_trips_total")
       snapshot.Registry.counters)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "generator deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "remove nth" `Quick test_remove_nth;
          Alcotest.test_case "phase names" `Quick test_phase_names;
        ] );
      ( "corpus",
        List.map
          (fun p ->
            Alcotest.test_case (Protocol.name p) `Quick (test_corpus p))
          Protocol.all );
      ( "campaign",
        [
          Alcotest.test_case "run_plan deterministic" `Quick test_run_plan_deterministic;
          Alcotest.test_case "central crash kill + recover" `Quick
            test_central_crash_kills_and_recovers;
          Alcotest.test_case "fault metrics counted" `Quick test_fault_metrics_counted;
          Alcotest.test_case "smoke sweep all protocols" `Slow test_campaign_smoke;
          Alcotest.test_case "stats deterministic" `Quick
            test_campaign_stats_deterministic;
          Alcotest.test_case "shrink fixpoint" `Quick test_shrink_fixpoint_on_clean_plan;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "dump on violation" `Quick test_flight_dump_on_violation;
          Alcotest.test_case "no dump on clean run" `Quick
            test_clean_run_has_no_flight_dump;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "money first trip" `Quick test_money_monitor_first_trip;
          Alcotest.test_case "stuck first trip" `Quick test_stuck_monitor_first_trip;
          Alcotest.test_case "lock-leak first trip" `Quick
            test_lock_leak_monitor_first_trip;
          Alcotest.test_case "pin-drift first trip" `Quick
            test_pin_drift_monitor_first_trip;
          Alcotest.test_case "quiet on a healthy run" `Quick
            test_monitor_quiet_on_healthy_run;
        ] );
    ]
