(* Tests for the sharded federation: the single-shard fast path, the
   two-level (cross-shard) round, shard-coordinator crash recovery in the
   window between the top-level decision and its local application, and
   the sharded == unsharded equivalence properties. *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine
module Site = Icdb_net.Site
module Federation = Icdb_core.Federation
module Central_recovery = Icdb_core.Central_recovery
module Global = Icdb_core.Global
module Program = Icdb_localdb.Program
module Tpc = Icdb_core.Two_phase_commit
module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol
module Sharding = Icdb_workload.Sharding
module Campaign = Icdb_fault.Campaign
module Plan = Icdb_fault.Plan

let outcome_testable = Alcotest.testable Global.pp_outcome ( = )

let site_cfg name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = true;
        supports_increment_locks = true;
        granularity = Db.Record_level;
        cc = Locking { wait_timeout = Some 100.0 };
      };
  }

(* 4 sites in 2 shards: shard 0 = {s0, s1} (coordinator s0), shard 1 =
   {s2, s3} (coordinator s2). *)
let make_sharded ?(shards = 2) ?(n = 4) eng =
  let configs = List.init n (fun i -> site_cfg (Printf.sprintf "s%d" i)) in
  Federation.create ~shards eng configs

let load_accounts fed rows =
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.Federation.sites

let value fed site key = Db.committed_value (Site.db (Federation.site fed site)) key

let in_sim eng f =
  let result = ref None in
  let failure = ref None in
  Fiber.spawn eng ~on_error:(fun e -> failure := Some e) (fun () -> result := Some (f ()));
  Sim.run eng;
  match !failure with
  | Some e -> raise e
  | None -> Option.get !result

let spec fed sites =
  {
    Global.gid = Federation.fresh_gid fed;
    branches =
      List.map
        (fun (site, delta) ->
          Global.branch ~vote_commit:true ~site [ Program.Increment ("x", delta) ])
        sites;
  }

(* --- fast path ----------------------------------------------------------- *)

let test_fast_path_no_top_level () =
  (* Both branches in shard 0: the whole round must stay at the shard
     coordinator — nothing in the central decision log, no central force,
     exactly one shard decision. *)
  let eng = Sim.create () in
  let fed = make_sharded eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Tpc.run fed (spec fed [ ("s0", 5); ("s1", -5) ])) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "central decision log untouched" 0
    (Hashtbl.length fed.Federation.decision_log);
  Alcotest.(check int) "no central log force" 0 (Federation.central_log_forces fed);
  Alcotest.(check int) "one shard decision" 1 (Federation.shard_decisions fed);
  Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed)

let test_cross_shard_top_level () =
  (* Branches in both shards: the decision is made (and forced) at the top
     level, then pushed to both shard coordinators. *)
  let eng = Sim.create () in
  let fed = make_sharded eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Tpc.run fed (spec fed [ ("s0", 5); ("s2", -5) ])) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check int) "central decision logged" 1
    (Hashtbl.length fed.Federation.decision_log);
  Alcotest.(check bool) "central force taken" true
    (Federation.central_log_forces fed >= 1);
  Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed)

(* --- shard-coordinator crash in the decision window ---------------------- *)

(* A cross-shard transaction prepared at s0 (shard 0) and s2 (shard 1),
   with the top-level decision stably logged but not yet applied anywhere:
   the exact state a shard coordinator that crashed between the top-level
   decide and its ack recovers from. *)
let prepared_cross_shard fed =
  let gid = Federation.fresh_gid fed in
  Federation.journal_open_routed fed ~sites:[ "s0"; "s2" ] ~gid ~protocol:"2pc";
  let prep site_name delta =
    let db = Site.db (Federation.site fed site_name) in
    let txn = Db.begin_txn db in
    Result.get_ok (Db.increment db txn ~key:"x" ~delta);
    Result.get_ok (Db.prepare db txn);
    Federation.journal_branch fed ~gid ~site:site_name ~txn_id:(Db.txn_id txn);
    txn
  in
  let t0 = prep "s0" 5 in
  let t2 = prep "s2" (-5) in
  Federation.log_decision fed ~gid ~commit:true;
  (gid, t0, t2)

let test_shard_crash_decision_window () =
  let eng = Sim.create () in
  let fed = make_sharded eng in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      let _gid, t0, t2 = prepared_cross_shard fed in
      Federation.shard_crash fed ~shard:0;
      let s = Central_recovery.recover_shard fed ~shard:0 in
      Alcotest.(check int) "one mirror recovered" 1 s.entries_recovered;
      Alcotest.(check int) "decision pushed to s0" 1 s.decisions_pushed;
      (* shard 0's recovery resolves only its own slice: s0's branch is
         committed, s2's is still prepared *)
      Alcotest.(check bool) "s0 committed" true (Db.state t0 = `Committed);
      Alcotest.(check bool) "s2 still prepared" true (Db.state t2 = `Prepared);
      Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
      let s1 = Central_recovery.recover_shard fed ~shard:1 in
      Alcotest.(check int) "shard 1 pushes its slice" 1 s1.decisions_pushed;
      Alcotest.(check bool) "s2 committed" true (Db.state t2 = `Committed);
      Alcotest.(check (option int)) "s2 debited" (Some 95) (value fed "s2" "x");
      (* the top-level entry is the top-level coordinator's to close *)
      ignore (Central_recovery.recover fed);
      Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed))

let test_fast_path_presumed_abort () =
  (* A single-shard entry still Executing with no decision anywhere: shard
     recovery presumes abort, exactly as whole-federation recovery would. *)
  let eng = Sim.create () in
  let fed = make_sharded eng in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      let gid = Federation.fresh_gid fed in
      Federation.journal_open_routed fed ~sites:[ "s0"; "s1" ] ~gid ~protocol:"2pc";
      let prep site_name delta =
        let db = Site.db (Federation.site fed site_name) in
        let txn = Db.begin_txn db in
        Result.get_ok (Db.increment db txn ~key:"x" ~delta);
        Result.get_ok (Db.prepare db txn);
        Federation.journal_branch fed ~gid ~site:site_name ~txn_id:(Db.txn_id txn)
      in
      prep "s0" 5;
      prep "s1" (-5);
      Federation.shard_crash fed ~shard:0;
      let s = Central_recovery.recover_shard fed ~shard:0 in
      Alcotest.(check int) "entry recovered" 1 s.entries_recovered;
      Alcotest.(check (option int)) "s0 rolled back" (Some 100) (value fed "s0" "x");
      Alcotest.(check (option int)) "s1 rolled back" (Some 100) (value fed "s1" "x");
      Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed))

let test_recover_shard_idempotent () =
  (* Double restarts: a second (and third) recovery pass over the same
     shard finds nothing left and changes nothing. *)
  let eng = Sim.create () in
  let fed = make_sharded eng in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      ignore (prepared_cross_shard fed);
      Federation.shard_crash fed ~shard:0;
      ignore (Central_recovery.recover_shard fed ~shard:0);
      let again = Central_recovery.recover_shard fed ~shard:0 in
      Alcotest.(check int) "second pass finds nothing" 0 again.entries_recovered;
      Alcotest.(check (option int)) "s0 stable" (Some 105) (value fed "s0" "x");
      ignore (Central_recovery.recover_shard fed ~shard:1);
      let again1 = Central_recovery.recover_shard fed ~shard:1 in
      Alcotest.(check int) "shard 1 second pass finds nothing" 0 again1.entries_recovered;
      (* full recovery after per-shard recovery is also a fixpoint *)
      ignore (Central_recovery.recover fed);
      let full = Central_recovery.recover fed in
      Alcotest.(check int) "full recovery fixpoint" 0 full.entries_recovered;
      Alcotest.(check (option int)) "s0 still stable" (Some 105) (value fed "s0" "x");
      Alcotest.(check (option int)) "s2 still stable" (Some 95) (value fed "s2" "x"))

let test_recover_shard_out_of_range () =
  let eng = Sim.create () in
  let fed = make_sharded eng in
  Alcotest.check_raises "out of range" (Invalid_argument "Central_recovery.recover_shard")
    (fun () -> ignore (Central_recovery.recover_shard fed ~shard:7))

(* --- shards=1 is the unsharded runner ------------------------------------ *)

let test_shards1_report_equals_unsharded () =
  (* With [shards = 1] the sharding knobs must be inert: the report is
     structurally identical to the plain config's, whatever the cross-shard
     fraction says. *)
  let base = { Runner.default with n_txns = 60; concurrency = 8 } in
  let r_plain = Runner.run base in
  let r_sharded = Runner.run { base with shards = 1; cross_shard_fraction = 0.7 } in
  Alcotest.(check bool) "reports equal" true (r_plain = r_sharded);
  Alcotest.(check int) "no shard decisions" 0 r_sharded.Runner.shard_decisions;
  Alcotest.(check int) "no shard forces" 0 r_sharded.Runner.shard_log_forces

let test_sharded_run_fast_path_only_at_zero_cross () =
  (* cross fraction 0: every transaction is single-shard, so the central
     decision log must never be forced and every decision is a shard one. *)
  let r =
    Runner.run
      {
        Runner.default with
        n_txns = 80;
        concurrency = 8;
        n_sites = 4;
        shards = 2;
        cross_shard_fraction = 0.0;
        decision_force_time = Some 2.0;
      }
  in
  Alcotest.(check bool) "money conserved" true r.Runner.money_conserved;
  Alcotest.(check bool) "serializable" true r.Runner.serializable;
  Alcotest.(check int) "no top-level forces" 0 r.Runner.central_log_forces;
  Alcotest.(check int) "every commit decided at its shard" r.Runner.committed
    r.Runner.shard_decisions

(* --- sharded == unsharded equivalence (QCheck2) -------------------------- *)

(* Over random topologies, shard counts, cross fractions and protocols: a
   sharded run satisfies exactly the invariants the unsharded run of the
   same workload shape satisfies — money conservation, serializability,
   full transaction accounting — and with [shards = 1] the two are one and
   the same run. *)
let prop_sharded_equals_unsharded =
  let open QCheck2 in
  let gen =
    Gen.(
      let* n_sites = 2 -- 6 in
      let* shards = 1 -- n_sites in
      let* cross = oneofl [ 0.0; 0.05; 0.3; 1.0 ] in
      let* protocol = oneofl Protocol.all in
      let* seed = 1 -- 1000 in
      return (n_sites, shards, cross, protocol, seed))
  in
  let print (n_sites, shards, cross, protocol, seed) =
    Printf.sprintf "sites=%d shards=%d cross=%.2f protocol=%s seed=%d" n_sites shards
      cross (Protocol.name protocol) seed
  in
  QCheck2.Test.make ~name:"sharded run keeps the unsharded invariants" ~count:30 ~print
    gen (fun (n_sites, shards, cross, protocol, seed) ->
      let cfg ~shards ~cross =
        {
          Runner.default with
          protocol;
          seed = Int64.of_int seed;
          n_sites;
          n_txns = 30;
          concurrency = 6;
          accounts_per_site = 12;
          use_increments = true;
          shards;
          cross_shard_fraction = cross;
        }
      in
      let sharded = Runner.run (cfg ~shards ~cross) in
      let unsharded = Runner.run (cfg ~shards:1 ~cross:0.0) in
      let ok (r : Runner.report) label =
        if not r.Runner.money_conserved then
          QCheck2.Test.fail_reportf "%s: money not conserved (%d -> %d)" label
            r.Runner.money_before r.Runner.money_after;
        if not r.Runner.serializable then
          QCheck2.Test.fail_reportf "%s: not serializable" label;
        if r.Runner.committed + r.Runner.aborted <> r.Runner.started then
          QCheck2.Test.fail_reportf "%s: accounting %d+%d <> %d" label
            r.Runner.committed r.Runner.aborted r.Runner.started
      in
      ok sharded "sharded";
      ok unsharded "unsharded";
      (* shards=1 must literally be the unsharded run *)
      if shards = 1 && sharded <> unsharded then
        QCheck2.Test.fail_reportf "shards=1 diverged from the unsharded run";
      true)

(* --- sharded chaos campaign ---------------------------------------------- *)

let test_sharded_chaos_campaign () =
  (* >= 100 plans x all six protocols on a 2-shard federation, shard
     crashes in the event mix: zero invariant violations. *)
  let stats = Campaign.run_campaign ~plans:100 ~shards:2 Protocol.all in
  Alcotest.(check int) "six protocols" 6 (List.length stats);
  List.iter
    (fun (s : Campaign.protocol_stats) ->
      Alcotest.(check int) "plans" 100 s.cp_plans;
      Alcotest.(check bool)
        ("shard-crash events drawn for " ^ Protocol.name s.cp_protocol)
        true
        (match List.assoc_opt "shard-crash" s.cp_by_class with
        | Some n -> n > 0
        | None -> false))
    stats;
  Alcotest.(check int) "zero violations" 0 (Campaign.total_violations stats)

let test_sharded_plan_generator_extends_classes () =
  (* The sharded generator draws shard crashes; the default one never does,
     and reproduces historical plans byte for byte. *)
  let sharded =
    List.init 200 (fun i ->
        Plan.generate ~shards:4 ~seed:(Int64.of_int i) ~n_sites:4 ~n_txns:30
          ~horizon:300.0 ())
  in
  let has_shard_crash p =
    List.exists (fun e -> Plan.classify e = "shard-crash") p.Plan.events
  in
  Alcotest.(check bool) "some plans carry shard crashes" true
    (List.exists has_shard_crash sharded);
  let unsharded =
    List.init 200 (fun i ->
        Plan.generate ~seed:(Int64.of_int i) ~n_sites:4 ~n_txns:30 ~horizon:300.0 ())
  in
  Alcotest.(check bool) "default generator never draws them" false
    (List.exists has_shard_crash unsharded)

(* --- S2 lab -------------------------------------------------------------- *)

let test_s2_smoke_monotone () =
  let rows = Sharding.run_cells ~smoke:true () in
  let at shards cross =
    List.find
      (fun (r : Sharding.row) -> r.sh_shards = shards && r.sh_cross = cross)
      rows
  in
  (* the acceptance ladder: strictly increasing 1 -> 4 shards at <= 5% *)
  List.iter
    (fun cross ->
      Alcotest.(check bool)
        (Printf.sprintf "throughput increases at cross %.2f" cross)
        true
        ((at 1 cross).sh_throughput < (at 2 cross).sh_throughput
        && (at 2 cross).sh_throughput < (at 4 cross).sh_throughput))
    [ 0.0; 0.05 ];
  (* the fast path made visible: no top-level force at 0% cross *)
  Alcotest.(check int) "no top forces at 2 shards, 0% cross" 0 (at 2 0.0).sh_top_forces;
  Alcotest.(check int) "no top forces at 4 shards, 0% cross" 0 (at 4 0.0).sh_top_forces;
  Alcotest.(check bool) "unsharded pays every force at the top" true
    ((at 1 0.0).sh_top_forces > 0 && (at 1 0.0).sh_shard_forces = 0)

let () =
  Alcotest.run "icdb sharding"
    [
      ( "fast-path",
        [
          Alcotest.test_case "single-shard round is local" `Quick
            test_fast_path_no_top_level;
          Alcotest.test_case "cross-shard round is top-level" `Quick
            test_cross_shard_top_level;
          Alcotest.test_case "runner at 0% cross never forces the top" `Quick
            test_sharded_run_fast_path_only_at_zero_cross;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash between decide and ack" `Quick
            test_shard_crash_decision_window;
          Alcotest.test_case "presumed abort on the fast path" `Quick
            test_fast_path_presumed_abort;
          Alcotest.test_case "double recovery idempotent" `Quick
            test_recover_shard_idempotent;
          Alcotest.test_case "shard index validated" `Quick
            test_recover_shard_out_of_range;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "shards=1 report equals unsharded" `Quick
            test_shards1_report_equals_unsharded;
          QCheck_alcotest.to_alcotest prop_sharded_equals_unsharded;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan generator gains shard crashes" `Quick
            test_sharded_plan_generator_extends_classes;
          Alcotest.test_case "100 plans x 6 protocols, 2 shards" `Slow
            test_sharded_chaos_campaign;
        ] );
      ("s2", [ Alcotest.test_case "smoke grid monotone" `Quick test_s2_smoke_monotone ]);
    ]
