(* Tests for Icdb_core: the three atomic-commitment protocols, the
   MLT-fused variant, the serialization-graph checker and the central
   logs. These tests reproduce, deterministically, every failure scenario
   §3 and §4 of the paper argue about. *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Graph = Icdb_core.Serialization_graph
module Action_log = Icdb_core.Action_log
module Metrics = Icdb_core.Metrics
module Tpc = Icdb_core.Two_phase_commit
module After = Icdb_core.Commit_after
module Before = Icdb_core.Commit_before
module Mlt = Icdb_core.Commit_before_mlt

let outcome_testable = Alcotest.testable Global.pp_outcome ( = )

let site_cfg ?(prepare = true) ?(granularity = Db.Record_level) name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = prepare;
        supports_increment_locks = true;
        granularity;
        cc = Locking { wait_timeout = Some 100.0 };
      };
  }

let make_fed ?(n = 2) ?(prepare = true) ?granularity eng =
  let configs = List.init n (fun i -> site_cfg ~prepare ?granularity (Printf.sprintf "s%d" i)) in
  Federation.create eng configs

let load_accounts fed rows =
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.Federation.sites

let value fed site key = Db.committed_value (Site.db (Federation.site fed site)) key

(* Run [f] in a fiber, drain the simulation, return the result. *)
let in_sim eng f =
  let result = ref None in
  let failure = ref None in
  Fiber.spawn eng ~on_error:(fun e -> failure := Some e) (fun () -> result := Some (f ()));
  Sim.run eng;
  match !failure with
  | Some e -> raise e
  | None -> Option.get !result

let kill_running_at eng fed ~site ~at =
  ignore
    (Sim.schedule eng ~delay:at (fun () ->
         let db = Site.db (Federation.site fed site) in
         List.iter (Db.kill db) (Db.running_transactions db)))

(* A two-site transfer: +amount at s0/key, -amount at s1/key. *)
let transfer_spec fed ?(vote0 = true) ?(vote1 = true) ?(amount = 5) key =
  {
    Global.gid = Federation.fresh_gid fed;
    branches =
      [
        Global.branch ~vote_commit:vote0 ~site:"s0" [ Program.Increment (key, amount) ];
        Global.branch ~vote_commit:vote1 ~site:"s1" [ Program.Increment (key, -amount) ];
      ];
  }

(* --- two-phase commit --- *)

let test_2pc_commit () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Tpc.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x")

let test_2pc_commit_points_fig3 () =
  (* Figure 3: the global decision falls strictly between every site's
     ready point and its final commit. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  load_accounts fed [ ("x", 100) ];
  ignore (in_sim eng (fun () -> Tpc.run fed (transfer_spec fed "x")));
  let t label actor = Option.get (Trace.find fed.trace ~actor ~label) in
  let decision = t "g1:decision:commit" "central" in
  List.iter
    (fun site ->
      let ready = t "g1:ready" site in
      let committed = t "g1:committed" site in
      Alcotest.(check bool) (site ^ " ready before decision") true (ready < decision);
      Alcotest.(check bool) (site ^ " decision before commit") true (decision < committed))
    [ "s0"; "s1" ]

let test_2pc_unsupported_site () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Tpc.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "refused" (Global.Aborted (Unsupported_site "s0")) outcome;
  Alcotest.(check (option int)) "nothing happened" (Some 100) (value fed "s0" "x")

let test_2pc_vote_abort () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Tpc.run fed (transfer_spec fed ~vote1:false "x")) in
  Alcotest.check outcome_testable "aborted" (Global.Aborted (Voted_abort "s1")) outcome;
  Alcotest.(check (option int)) "s0 unchanged" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 unchanged" (Some 100) (value fed "s1" "x")

let test_2pc_execution_failure_aborts_all () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load_accounts fed [ ("x", 100) ];
  (* s1 is down: its branch cannot even begin. *)
  Site.crash (Federation.site fed "s1");
  let outcome = in_sim eng (fun () -> Tpc.run fed (transfer_spec fed "x")) in
  (match outcome with
  | Global.Aborted (Local_abort { site = "s1"; reason = Db.Site_crashed }) -> ()
  | o -> Alcotest.failf "unexpected outcome %s" (Global.outcome_to_string o));
  Alcotest.(check (option int)) "s0 rolled back" (Some 100) (value fed "s0" "x")

let test_2pc_crash_matrix_atomicity () =
  (* V6, 2PC column: crash site s0 at every instant of the protocol; the
     outcome may differ but atomicity must never break: either both sites
     show the transfer or neither does. *)
  let crash_times = List.init 22 (fun i -> 0.5 +. (float_of_int i *. 1.0)) in
  List.iter
    (fun crash_at ->
      let eng = Sim.create () in
      let fed = make_fed eng in
      load_accounts fed [ ("x", 100) ];
      ignore
        (Sim.schedule eng ~delay:crash_at (fun () ->
             Site.crash_for (Federation.site fed "s0") ~duration:30.0));
      let outcome = in_sim eng (fun () -> Tpc.run fed (transfer_spec fed "x")) in
      List.iter
        (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
        fed.sites;
      let v0 = value fed "s0" "x" and v1 = value fed "s1" "x" in
      let consistent =
        match outcome with
        | Global.Committed -> v0 = Some 105 && v1 = Some 95
        | Global.Aborted _ -> v0 = Some 100 && v1 = Some 100
      in
      if not consistent then
        Alcotest.failf "crash at %.1f: outcome %s but s0=%s s1=%s" crash_at
          (Global.outcome_to_string outcome)
          (Option.fold ~none:"-" ~some:string_of_int v0)
          (Option.fold ~none:"-" ~some:string_of_int v1))
    crash_times

(* --- commitment after the global decision --- *)

let test_after_commit () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> After.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "no repetitions needed" 0 (Metrics.repetitions fed.metrics);
  Alcotest.(check int) "redo log cleaned" 0 (Action_log.pending fed.redo_log)

let test_after_commit_points_fig5 () =
  (* Figure 5: the decision precedes every local commitment. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  ignore (in_sim eng (fun () -> After.run fed (transfer_spec fed "x")));
  let decision = Option.get (Trace.find fed.trace ~actor:"central" ~label:"g1:decision:commit") in
  List.iter
    (fun site ->
      let ready = Option.get (Trace.find fed.trace ~actor:site ~label:"g1:ready") in
      let committed = Option.get (Trace.find fed.trace ~actor:site ~label:"g1:committed") in
      Alcotest.(check bool) "ready before decision" true (ready < decision);
      Alcotest.(check bool) "decision before local commit" true (decision < committed))
    [ "s0"; "s1" ]

let test_after_erroneous_abort_triggers_repetition () =
  (* The §3.2 scenario: a local is killed after answering ready; the
     protocol repeats it until it commits. Atomicity holds. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  (* Timeline: execute ends ~3-4, prepare round ~4-6, decision ~6, commit
     request arrives ~7 and takes commit_delay 2. Killing s0's local at 6.5
     lands after ready, before local commit. *)
  kill_running_at eng fed ~site:"s0" ~at:6.5;
  let outcome = in_sim eng (fun () -> After.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed despite kill" Global.Committed outcome;
  Alcotest.(check bool) "at least one repetition" true (Metrics.repetitions fed.metrics >= 1);
  Alcotest.(check (option int)) "applied exactly once" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "peer applied once" (Some 95) (value fed "s1" "x")

let test_after_kill_before_ready_aborts_globally () =
  (* Killed during execution: the prepare answer is an abort vote and the
     whole global transaction aborts cleanly. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  kill_running_at eng fed ~site:"s0" ~at:2.0;
  let outcome = in_sim eng (fun () -> After.run fed (transfer_spec fed "x")) in
  (match outcome with
  | Global.Aborted (Local_abort { site = "s0"; _ }) -> ()
  | o -> Alcotest.failf "unexpected outcome %s" (Global.outcome_to_string o));
  Alcotest.(check (option int)) "s0 unchanged" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 unchanged" (Some 100) (value fed "s1" "x")

let test_after_crash_matrix_atomicity () =
  (* V6, commitment-after column, including the crash windows around the
     local commit and the repetition. *)
  let crash_times = List.init 24 (fun i -> 0.5 +. float_of_int i) in
  List.iter
    (fun crash_at ->
      let eng = Sim.create () in
      let fed = make_fed ~prepare:false eng in
      load_accounts fed [ ("x", 100) ];
      ignore
        (Sim.schedule eng ~delay:crash_at (fun () ->
             Site.crash_for (Federation.site fed "s0") ~duration:30.0));
      let outcome = in_sim eng (fun () -> After.run fed (transfer_spec fed "x")) in
      List.iter
        (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
        fed.sites;
      let v0 = value fed "s0" "x" and v1 = value fed "s1" "x" in
      let consistent =
        match outcome with
        | Global.Committed -> v0 = Some 105 && v1 = Some 95
        | Global.Aborted _ -> v0 = Some 100 && v1 = Some 100
      in
      if not consistent then
        Alcotest.failf "crash at %.1f: outcome %s but s0=%s s1=%s" crash_at
          (Global.outcome_to_string outcome)
          (Option.fold ~none:"-" ~some:string_of_int v0)
          (Option.fold ~none:"-" ~some:string_of_int v1))
    crash_times

let test_after_global_cc_blocks_conflicting_submission () =
  (* The additional CC module: a second global transaction on the same keys
     waits for the first to finish (its locks are held to the global end),
     so its response time reflects the wait. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let finish1 = ref 0.0 and finish2 = ref 0.0 in
  let results = ref [] in
  Fiber.spawn eng (fun () ->
      let o = After.run fed (transfer_spec fed "x") in
      finish1 := Sim.now eng;
      results := o :: !results);
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 0.1;
      let o = After.run fed (transfer_spec fed "x") in
      finish2 := Sim.now eng;
      results := o :: !results);
  Sim.run eng;
  List.iter
    (fun o -> Alcotest.check outcome_testable "both commit" Global.Committed o)
    !results;
  Alcotest.(check bool) "second serialized after first" true (!finish2 > !finish1);
  Alcotest.(check (option int)) "both applied at s0" (Some 110) (value fed "s0" "x")

let test_after_occ_validation_failure_repeats () =
  (* A heterogeneous federation: s0 runs an optimistic scheduler. G1's
     local at s0 passes its "ready" answer while still unvalidated; G2's
     conflicting write then commits first, so G1's local fails validation
     at commit time — an erroneous abort after ready, repaired by
     repetition (§3.2 names exactly this case). *)
  let eng = Sim.create () in
  let occ_cfg =
    {
      (Db.default_config ~site_name:"s0") with
      capabilities =
        {
          supports_prepare = false;
          supports_increment_locks = false;
          granularity = Db.Record_level;
          cc = Db.Optimistic;
        };
    }
  in
  let fed = Federation.create eng [ occ_cfg; site_cfg ~prepare:false "s1" ] in
  fed.global_cc_enabled <- false;
  load_accounts fed [ ("x", 1); ("y", 0); ("z", 0) ];
  let outcome = ref None in
  Fiber.spawn eng (fun () ->
      let g1 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches =
            [
              Global.branch ~site:"s0" [ Program.Read "x"; Program.Write ("y", 5) ];
              Global.branch ~site:"s1" [ Program.Increment ("z", 1) ];
            ];
        }
      in
      outcome := Some (After.run fed g1));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 2.5;
      let g2 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches = [ Global.branch ~site:"s0" [ Program.Write ("x", 99) ] ];
        }
      in
      ignore (Before.run fed g2));
  Sim.run eng;
  Alcotest.check outcome_testable "G1 committed despite validation failure"
    Global.Committed (Option.get !outcome);
  Alcotest.(check bool) "repetition happened" true (Metrics.repetitions fed.metrics >= 1);
  Alcotest.(check (option int)) "G1's write applied once" (Some 5) (value fed "s0" "y");
  Alcotest.(check (option int)) "G2's write stands" (Some 99) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 applied once" (Some 1) (value fed "s1" "z")

(* --- commitment before the global decision --- *)

let test_before_commit () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Before.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "no compensations" 0 (Metrics.compensations fed.metrics);
  Alcotest.(check int) "undo log cleaned" 0 (Action_log.pending fed.undo_log)

let test_before_commit_points_fig7 () =
  (* Figure 7: every local commit precedes the global decision. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  ignore (in_sim eng (fun () -> Before.run fed (transfer_spec fed "x")));
  let decision = Option.get (Trace.find fed.trace ~actor:"central" ~label:"g1:decision:commit") in
  List.iter
    (fun site ->
      let local = Option.get (Trace.find fed.trace ~actor:site ~label:"g1:locally-committed") in
      Alcotest.(check bool) "local commit before decision" true (local < decision))
    [ "s0"; "s1" ]

let test_before_mixed_outcome_compensates () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Before.run fed (transfer_spec fed ~vote1:false "x")) in
  Alcotest.check outcome_testable "aborted" (Global.Aborted (Voted_abort "s1")) outcome;
  Alcotest.(check bool) "compensation ran" true (Metrics.compensations fed.metrics >= 1);
  Alcotest.(check (option int)) "s0 restored" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 unchanged" (Some 100) (value fed "s1" "x")

let test_before_crash_before_answer_waits_for_recovery () =
  (* §3.3: "the global transaction manager has to wait for the local system
     to come up again". Crash s1 during execution; its local is rolled back
     by restart recovery, the answer is abort, and s0 gets compensated. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  ignore
    (Sim.schedule eng ~delay:2.0 (fun () ->
         Site.crash_for (Federation.site fed "s1") ~duration:50.0));
  let finished_at = ref 0.0 in
  let outcome =
    in_sim eng (fun () ->
        let o = Before.run fed (transfer_spec fed "x") in
        finished_at := Sim.now eng;
        o)
  in
  (match outcome with
  | Global.Aborted (Local_abort { site = "s1"; reason = Db.Site_crashed }) -> ()
  | o -> Alcotest.failf "unexpected outcome %s" (Global.outcome_to_string o));
  Alcotest.(check bool) "waited for recovery" true (!finished_at >= 52.0);
  Alcotest.(check (option int)) "s0 compensated" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 rolled back by recovery" (Some 100) (value fed "s1" "x")

let test_before_crash_matrix_atomicity () =
  (* V6, commitment-before column: crash s0 at every instant, including the
     undo window. Aborted runs must net to zero, committed runs must apply
     both branches. Intended abort at s1 forces the undo path. *)
  let crash_times = List.init 30 (fun i -> 0.5 +. float_of_int i) in
  List.iter
    (fun crash_at ->
      let eng = Sim.create () in
      let fed = make_fed ~prepare:false eng in
      load_accounts fed [ ("x", 100) ];
      ignore
        (Sim.schedule eng ~delay:crash_at (fun () ->
             Site.crash_for (Federation.site fed "s0") ~duration:20.0));
      let outcome = in_sim eng (fun () -> Before.run fed (transfer_spec fed ~vote1:false "x")) in
      List.iter
        (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
        fed.sites;
      (match outcome with
      | Global.Aborted _ -> ()
      | Global.Committed -> Alcotest.fail "must abort: s1 votes no");
      let v0 = value fed "s0" "x" in
      if v0 <> Some 100 then
        Alcotest.failf "crash at %.1f: s0 not restored (%s)" crash_at
          (Option.fold ~none:"-" ~some:string_of_int v0))
    crash_times

(* --- serializability requirements (V7) --- *)

let test_before_dirty_read_without_global_cc () =
  (* §3.3's requirement violated on purpose: with the additional CC module
     disabled, a second global transaction reads s0/x between G1's local
     commit and its compensation. The checker must flag it. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  fed.global_cc_enabled <- false;
  load_accounts fed [ ("x", 100) ];
  Fiber.spawn eng (fun () ->
      ignore (Before.run fed (transfer_spec fed ~vote1:false "x")));
  let g2_saw = ref None in
  Fiber.spawn eng (fun () ->
      (* Lands after G1's local commit at s0 (~5) and before its undo. *)
      Fiber.sleep eng 6.0;
      let spec =
        {
          Global.gid = Federation.fresh_gid fed;
          branches = [ Global.branch ~site:"s0" [ Program.Read "x" ] ];
        }
      in
      ignore (Before.run fed spec);
      g2_saw := value fed "s0" "x");
  Sim.run eng;
  let violations = Graph.violations fed.graph in
  Alcotest.(check bool) "dirty read flagged" true
    (List.exists (function Graph.Dirty_read _ -> true | Graph.Cycle _ -> false) violations)

let test_before_global_cc_prevents_dirty_read () =
  (* Same schedule with the additional CC module enabled: G2 is delayed
     until G1 is fully compensated; no violation. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  Fiber.spawn eng (fun () ->
      ignore (Before.run fed (transfer_spec fed ~vote1:false "x")));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 6.0;
      let spec =
        {
          Global.gid = Federation.fresh_gid fed;
          branches = [ Global.branch ~site:"s0" [ Program.Read "x" ] ];
        }
      in
      ignore (Before.run fed spec));
  Sim.run eng;
  Alcotest.(check bool) "serializable" true (Graph.serializable fed.graph)

let test_after_order_flip_without_global_cc () =
  (* §3.2's requirement violated on purpose: G1's local at s0 is killed
     after ready; with the additional CC module off, G2 slips in between
     the first execution and the repetition, flipping the serialization
     order at s0 while the order at s1 is the opposite — a global cycle. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  fed.global_cc_enabled <- false;
  load_accounts fed [ ("x", 100); ("y", 100) ];
  let g1 =
    {
      Global.gid = Federation.fresh_gid fed;
      branches =
        [
          Global.branch ~site:"s0" [ Program.Read "x" ];
          Global.branch ~site:"s1" [ Program.Increment ("y", 1) ];
        ];
    }
  in
  Fiber.spawn eng (fun () -> ignore (After.run fed g1));
  (* Kill G1's local at s0 after its ready answer (~5.5). *)
  kill_running_at eng fed ~site:"s0" ~at:5.5;
  (* G2 starts so that its write request reaches s0 right after the kill
     (t=5.6) and before the repetition re-locks x (t=6). *)
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 4.6;
      let g2 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches =
            [
              Global.branch ~site:"s0" [ Program.Write ("x", 999) ];
              Global.branch ~site:"s1" [ Program.Read "y" ];
            ];
        }
      in
      ignore (Before.run fed g2));
  Sim.run eng;
  let violations = Graph.violations fed.graph in
  Alcotest.(check bool) "cycle flagged" true
    (List.exists (function Graph.Cycle _ -> true | Graph.Dirty_read _ -> false) violations)

let test_after_global_cc_prevents_order_flip () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100); ("y", 100) ];
  let g1 =
    {
      Global.gid = Federation.fresh_gid fed;
      branches =
        [
          Global.branch ~site:"s0" [ Program.Read "x" ];
          Global.branch ~site:"s1" [ Program.Increment ("y", 1) ];
        ];
    }
  in
  Fiber.spawn eng (fun () -> ignore (After.run fed g1));
  kill_running_at eng fed ~site:"s0" ~at:5.5;
  (* G2 starts so that its write request reaches s0 right after the kill
     (t=5.6) and before the repetition re-locks x (t=6). *)
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 4.6;
      let g2 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches =
            [
              Global.branch ~site:"s0" [ Program.Write ("x", 999) ];
              Global.branch ~site:"s1" [ Program.Read "y" ];
            ];
        }
      in
      ignore (Before.run fed g2));
  Sim.run eng;
  Alcotest.(check bool) "serializable with CC" true (Graph.serializable fed.graph)

(* --- commitment before + multi-level transactions --- *)

let mlt_transfer fed ?(abort_after = None) amount =
  {
    Global.mlt_gid = Federation.fresh_gid fed;
    actions =
      [
        Action.withdraw ~site:"s0" ~account:"x" amount;
        Action.deposit ~site:"s1" ~account:"x" amount;
      ];
    abort_after;
  }

let test_mlt_commit () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Mlt.run fed (mlt_transfer fed 30)) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "withdrawn" (Some 70) (value fed "s0" "x");
  Alcotest.(check (option int)) "deposited" (Some 130) (value fed "s1" "x");
  Alcotest.(check int) "no additional CC" 0 (Metrics.global_lock_acquisitions fed.metrics);
  Alcotest.(check int) "no additional undo-log writes" 0
    (Action_log.write_count fed.undo_log);
  Alcotest.(check bool) "L1 locks used" true (Metrics.l1_lock_acquisitions fed.metrics >= 2)

let test_mlt_intended_abort_compensates () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let outcome =
    in_sim eng (fun () -> Mlt.run fed (mlt_transfer fed ~abort_after:(Some 1) 30))
  in
  Alcotest.check outcome_testable "aborted" (Global.Aborted Intended_abort) outcome;
  Alcotest.(check bool) "inverse ran" true (Metrics.compensations fed.metrics >= 1);
  Alcotest.(check (option int)) "s0 restored" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 untouched" (Some 100) (value fed "s1" "x")

let test_mlt_local_failure_compensates () =
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  (* s1 down: the second action fails; the first is undone by inverse. *)
  Site.crash (Federation.site fed "s1");
  let outcome = in_sim eng (fun () -> Mlt.run fed (mlt_transfer fed 30)) in
  (match outcome with
  | Global.Aborted (Local_abort { site = "s1"; _ }) -> ()
  | o -> Alcotest.failf "unexpected outcome %s" (Global.outcome_to_string o));
  Alcotest.(check (option int)) "s0 restored" (Some 100) (value fed "s0" "x")

let test_mlt_commuting_actions_concurrent () =
  (* Deposits commute at L1: two global transactions depositing to the same
     account proceed in parallel. A read-balance conflicts and waits. *)
  let eng = Sim.create () in
  let fed = make_fed ~prepare:false eng in
  load_accounts fed [ ("x", 100) ];
  let finished = Hashtbl.create 4 in
  let spawn_deposit name =
    Fiber.spawn eng (fun () ->
        let spec =
          {
            Global.mlt_gid = Federation.fresh_gid fed;
            actions = [ Action.deposit ~site:"s0" ~account:"x" 10 ];
            abort_after = None;
          }
        in
        ignore (Mlt.run fed spec);
        Hashtbl.replace finished name (Sim.now eng))
  in
  spawn_deposit "d1";
  spawn_deposit "d2";
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 0.5;
      let spec =
        {
          Global.mlt_gid = Federation.fresh_gid fed;
          actions = [ Action.read_balance ~site:"s0" ~account:"x" ];
          abort_after = None;
        }
      in
      ignore (Mlt.run fed spec);
      Hashtbl.replace finished "reader" (Sim.now eng));
  Sim.run eng;
  let t name = Hashtbl.find finished name in
  Alcotest.(check bool) "deposits concurrent" true (Float.abs (t "d1" -. t "d2") < 0.001);
  Alcotest.(check bool) "reader waits for both deposits" true
    (t "reader" > t "d1" && t "reader" > t "d2");
  Alcotest.(check (option int)) "both deposits applied" (Some 120) (value fed "s0" "x")

let test_fig8_page_level_vs_mlt () =
  (* Figure 8: two records on the same page. Single-level transactions
     (here: flat commit-after on page-level sites) serialize on the page
     lock held to the global end; the two-level variant releases the page
     lock at the end of each short L0 transaction and relies on commuting
     L1 increment locks. *)
  let run_pair make_txn =
    let eng = Sim.create () in
    let fed = make_fed ~n:1 ~prepare:false ~granularity:Db.Page_level eng in
    (* x and y are loaded together: same page. *)
    load_accounts fed [ ("x", 0); ("y", 0) ];
    let finish = ref [] in
    for i = 0 to 1 do
      Fiber.spawn eng (fun () ->
          make_txn fed i;
          finish := Sim.now eng :: !finish)
    done;
    Sim.run eng;
    (fed, List.fold_left Float.max 0.0 !finish)
  in
  (* Single-level: one flat transaction doing both increments. *)
  let _, flat_makespan =
    run_pair (fun fed _ ->
        let spec =
          {
            Global.gid = Federation.fresh_gid fed;
            branches =
              [
                Global.branch ~site:"s0"
                  [ Program.Increment ("x", 1); Program.Increment ("y", 1) ];
              ];
          }
        in
        ignore (After.run fed spec))
  in
  (* Two-level: each increment is its own L0 transaction. *)
  let mlt_fed, mlt_makespan =
    run_pair (fun fed _ ->
        let spec =
          {
            Global.mlt_gid = Federation.fresh_gid fed;
            actions =
              [
                Action.increment ~site:"s0" ~key:"x" 1;
                Action.increment ~site:"s0" ~key:"y" 1;
              ];
            abort_after = None;
          }
        in
        ignore (Mlt.run fed spec))
  in
  Alcotest.(check (option int)) "mlt: both x increments" (Some 2) (value mlt_fed "s0" "x");
  Alcotest.(check (option int)) "mlt: both y increments" (Some 2) (value mlt_fed "s0" "y");
  Alcotest.(check bool)
    (Printf.sprintf "two-level faster under page conflicts (%.1f < %.1f)" mlt_makespan
       flat_makespan)
    true (mlt_makespan < flat_makespan)

(* --- message complexity (V5) --- *)

let test_message_counts () =
  let count protocol expected =
    let eng = Sim.create () in
    let fed = make_fed eng in
    load_accounts fed [ ("x", 100) ];
    (match protocol with
    | `Tpc -> ignore (in_sim eng (fun () -> Tpc.run fed (transfer_spec fed "x")))
    | `After -> ignore (in_sim eng (fun () -> After.run fed (transfer_spec fed "x")))
    | `Before -> ignore (in_sim eng (fun () -> Before.run fed (transfer_spec fed "x"))));
    Alcotest.(check int)
      (Printf.sprintf "total messages (%d expected)" expected)
      expected (Federation.total_messages fed)
  in
  (* n = 2 sites. Execution phase: 2 messages per site = 4. 2PC and
     commit-after add prepare/ready + decision/finished = 8; commit-before
     adds only the inquiry round = 4. *)
  count `Tpc 12;
  count `After 12;
  count `Before 8

(* --- serialization graph unit tests --- *)

let test_graph_conflict_classification () =
  let open Db in
  let read k = Read { key = k; value = None } in
  let write k = Wrote { key = k; before = None; after = Some 1 } in
  let incr k = Incremented { key = k; delta = 1 } in
  Alcotest.(check bool) "r/r no" false (Graph.conflict [ read "a" ] [ read "a" ]);
  Alcotest.(check bool) "i/i no" false (Graph.conflict [ incr "a" ] [ incr "a" ]);
  Alcotest.(check bool) "r/w yes" true (Graph.conflict [ read "a" ] [ write "a" ]);
  Alcotest.(check bool) "i/w yes" true (Graph.conflict [ incr "a" ] [ write "a" ]);
  Alcotest.(check bool) "r/i yes" true (Graph.conflict [ read "a" ] [ incr "a" ]);
  Alcotest.(check bool) "disjoint keys no" false (Graph.conflict [ write "a" ] [ write "b" ]);
  Alcotest.(check bool) "markers ignored" false
    (Graph.conflict [ write "__cm:1" ] [ write "__cm:1" ])

let test_graph_detects_cycle () =
  let g = Graph.create () in
  let w k = [ Db.Wrote { key = k; before = None; after = Some 1 } ] in
  (* site A: 1 before 2; site B: 2 before 1 — classic global cycle. *)
  Graph.record_local g ~gid:1 ~site:"A" ~compensation:false (w "x");
  Graph.record_local g ~gid:2 ~site:"A" ~compensation:false (w "x");
  Graph.record_local g ~gid:2 ~site:"B" ~compensation:false (w "y");
  Graph.record_local g ~gid:1 ~site:"B" ~compensation:false (w "y");
  Graph.record_outcome g ~gid:1 ~committed:true;
  Graph.record_outcome g ~gid:2 ~committed:true;
  Alcotest.(check bool) "cycle found" true
    (List.exists (function Graph.Cycle _ -> true | _ -> false) (Graph.violations g))

let test_graph_serial_order_ok () =
  let g = Graph.create () in
  let w k = [ Db.Wrote { key = k; before = None; after = Some 1 } ] in
  Graph.record_local g ~gid:1 ~site:"A" ~compensation:false (w "x");
  Graph.record_local g ~gid:2 ~site:"A" ~compensation:false (w "x");
  Graph.record_local g ~gid:1 ~site:"B" ~compensation:false (w "y");
  Graph.record_local g ~gid:2 ~site:"B" ~compensation:false (w "y");
  Graph.record_outcome g ~gid:1 ~committed:true;
  Graph.record_outcome g ~gid:2 ~committed:true;
  Alcotest.(check bool) "serializable" true (Graph.serializable g)

let test_graph_dirty_read_window () =
  let g = Graph.create () in
  let w k = [ Db.Wrote { key = k; before = None; after = Some 1 } ] in
  let r k = [ Db.Read { key = k; value = None } ] in
  Graph.record_local g ~gid:1 ~site:"A" ~compensation:false (w "x");
  Graph.record_local g ~gid:2 ~site:"A" ~compensation:false (r "x");
  Graph.record_local g ~gid:1 ~site:"A" ~compensation:true (w "x");
  Graph.record_outcome g ~gid:1 ~committed:false;
  Graph.record_outcome g ~gid:2 ~committed:true;
  (match Graph.violations g with
  | [ Graph.Dirty_read { reader = 2; aborted_writer = 1; site = "A" } ] -> ()
  | v -> Alcotest.failf "unexpected violations (%d)" (List.length v));
  (* Reader after the compensation: fine. *)
  let g2 = Graph.create () in
  Graph.record_local g2 ~gid:1 ~site:"A" ~compensation:false (w "x");
  Graph.record_local g2 ~gid:1 ~site:"A" ~compensation:true (w "x");
  Graph.record_local g2 ~gid:2 ~site:"A" ~compensation:false (r "x");
  Graph.record_outcome g2 ~gid:1 ~committed:false;
  Graph.record_outcome g2 ~gid:2 ~committed:true;
  Alcotest.(check bool) "after compensation ok" true (Graph.serializable g2)

(* Property: the graph checker's cycle detection agrees with brute force —
   a committed history is serializable iff some total order of the global
   transactions is consistent with every site's conflicting commit order. *)
let prop_graph_matches_bruteforce =
  let open QCheck2 in
  let gen =
    (* per site: a permutation of gids given by ranks; per gid+site: an
       access (key, kind). n gids in 2..4. *)
    Gen.(
      int_range 2 4 >>= fun n ->
      let perm = list_repeat n (int_range 0 1000) in
      let accesses = list_repeat n (pair (int_range 0 1) (int_range 0 2)) in
      tup5 (pure n) perm perm accesses accesses)
  in
  QCheck2.Test.make ~name:"graph cycle detection matches brute force" ~count:300 gen
    (fun (n, rank_a, rank_b, acc_a, acc_b) ->
      let order ranks =
        List.mapi (fun gid rank -> (rank, gid + 1)) ranks
        |> List.sort compare |> List.map snd
      in
      let access_of (key_i, kind_i) =
        let key = Printf.sprintf "k%d" key_i in
        match kind_i with
        | 0 -> Db.Read { key; value = None }
        | 1 -> Db.Wrote { key; before = None; after = Some 1 }
        | _ -> Db.Incremented { key; delta = 1 }
      in
      let site_history ranks accs =
        List.map (fun gid -> (gid, [ access_of (List.nth accs (gid - 1)) ])) (order ranks)
      in
      let hist_a = site_history rank_a acc_a and hist_b = site_history rank_b acc_b in
      let g = Graph.create () in
      List.iter
        (fun (site, hist) ->
          List.iter
            (fun (gid, accesses) ->
              Graph.record_local g ~gid ~site ~compensation:false accesses)
            hist)
        [ ("A", hist_a); ("B", hist_b) ];
      for gid = 1 to n do
        Graph.record_outcome g ~gid ~committed:true
      done;
      let cycle_found =
        List.exists (function Graph.Cycle _ -> true | _ -> false) (Graph.violations g)
      in
      (* brute force: try every permutation of [1..n] *)
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
          List.concat_map
            (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
            l
      in
      let consistent perm =
        let pos gid = Option.get (List.find_index (( = ) gid) perm) in
        List.for_all
          (fun (_, hist) ->
            let rec pairs = function
              | [] -> true
              | (g1, a1) :: rest ->
                List.for_all
                  (fun (g2, a2) ->
                    (not (Graph.conflict a1 a2)) || pos g1 < pos g2)
                  rest
                && pairs rest
            in
            pairs hist)
          [ ("A", hist_a); ("B", hist_b) ]
      in
      let serializable_bf =
        List.exists consistent (permutations (List.init n (fun i -> i + 1)))
      in
      cycle_found = not serializable_bf)

(* Property: the indexed checker agrees with a straightforward O(n^2)
   reference oracle — the seed's all-pairs formulation, reimplemented here
   from scratch — on randomized histories mixing committed, aborted and
   compensation locals over all three access kinds (plus "__" marker keys,
   which both sides must ignore). Both the cycle verdict and the exact
   dirty-read reports must match. *)
let prop_graph_matches_reference_oracle =
  let open QCheck2 in
  let gen =
    (* 1-2 sites; per site up to 10 locals of (gid, compensation, accesses);
       key 3 is an internal "__" marker key. *)
    Gen.(
      int_range 2 4 >>= fun n_gids ->
      let access = pair (int_range 0 3) (int_range 0 2) in
      let local =
        tup3 (int_range 1 n_gids)
          (frequency [ (4, pure false); (1, pure true) ])
          (list_size (int_range 1 2) access)
      in
      let site_hist = list_size (int_range 0 10) local in
      tup3 (pure n_gids) (list_size (int_range 1 2) site_hist) (list_repeat n_gids bool))
  in
  QCheck2.Test.make ~name:"indexed graph matches O(n^2) reference oracle" ~count:500 gen
    (fun (n_gids, raw_sites, outcomes) ->
      let access_of (key_i, kind_i) =
        let key = if key_i = 3 then "__marker" else Printf.sprintf "k%d" key_i in
        match kind_i with
        | 0 -> Db.Read { key; value = None }
        | 1 -> Db.Wrote { key; before = None; after = Some 1 }
        | _ -> Db.Incremented { key; delta = 1 }
      in
      let sites =
        List.mapi
          (fun i hist ->
            ( Printf.sprintf "S%d" i,
              List.map
                (fun (gid, comp, accs) -> (gid, comp, List.map access_of accs))
                hist ))
          raw_sites
      in
      let committed gid = List.nth outcomes (gid - 1) in
      (* system under test *)
      let g = Graph.create () in
      List.iter
        (fun (site, hist) ->
          List.iter
            (fun (gid, compensation, accesses) ->
              Graph.record_local g ~gid ~site ~compensation accesses)
            hist)
        sites;
      List.iteri (fun i c -> Graph.record_outcome g ~gid:(i + 1) ~committed:c) outcomes;
      let vs = Graph.violations g in
      let cycle_found = List.exists (function Graph.Cycle _ -> true | _ -> false) vs in
      let dirty =
        List.filter_map
          (function
            | Graph.Dirty_read { reader; aborted_writer; site } ->
              Some (site, aborted_writer, reader)
            | Graph.Cycle _ -> None)
          vs
        |> List.sort compare
      in
      (* reference oracle, sharing no code with the checker *)
      let key_of = function
        | Db.Read { key; _ } | Db.Wrote { key; _ } | Db.Incremented { key; _ } -> key
      in
      let internal a =
        let k = key_of a in
        String.length k >= 2 && String.sub k 0 2 = "__"
      in
      let kind_of = function Db.Read _ -> `R | Db.Wrote _ -> `W | Db.Incremented _ -> `I in
      let access_conflict a b =
        (not (internal a))
        && key_of a = key_of b
        &&
        match (kind_of a, kind_of b) with `R, `R | `I, `I -> false | _ -> true
      in
      let conflict_ref la lb =
        List.exists (fun a -> List.exists (access_conflict a) lb) la
      in
      (* cycle verdict: serializable iff some total order of the gids is
         consistent with every site's conflicting committed commit order *)
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
          List.concat_map
            (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
            l
      in
      let consistent perm =
        let pos gid = Option.get (List.find_index (( = ) gid) perm) in
        List.for_all
          (fun (_, hist) ->
            let commits =
              List.filter_map
                (fun (gid, comp, accs) ->
                  if committed gid && not comp then Some (gid, accs) else None)
                hist
            in
            let rec pairs = function
              | [] -> true
              | (g1, a1) :: rest ->
                List.for_all
                  (fun (g2, a2) ->
                    g1 = g2 || (not (conflict_ref a1 a2)) || pos g1 < pos g2)
                  rest
                && pairs rest
            in
            pairs commits)
          sites
      in
      let serializable_ref =
        List.exists consistent (permutations (List.init n_gids (fun i -> i + 1)))
      in
      (* dirty reads: the seed's all-pairs window scan *)
      let dirty_ref =
        List.concat_map
          (fun (site, hist) ->
            let arr = Array.of_list hist in
            let n = Array.length arr in
            let out = ref [] in
            for i = 0 to n - 1 do
              let gid_i, comp_i, acc_i = arr.(i) in
              if (not comp_i) && not (committed gid_i) then begin
                let wend = ref n in
                (try
                   for j = i + 1 to n - 1 do
                     let gid_j, comp_j, _ = arr.(j) in
                     if gid_j = gid_i && comp_j then begin
                       wend := j;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                (* pure reads of the aborted local are harmless *)
                let written =
                  List.filter_map
                    (fun a ->
                      match a with
                      | Db.Wrote _ | Db.Incremented _ when not (internal a) ->
                        Some (key_of a)
                      | _ -> None)
                    acc_i
                in
                let changed =
                  List.filter
                    (fun a ->
                      match a with
                      | Db.Read _ -> List.mem (key_of a) written
                      | Db.Wrote _ | Db.Incremented _ -> not (internal a))
                    acc_i
                in
                for j = i + 1 to !wend - 1 do
                  let gid_j, comp_j, acc_j = arr.(j) in
                  if gid_j <> gid_i && committed gid_j && (not comp_j)
                     && conflict_ref changed acc_j
                  then out := (site, gid_i, gid_j) :: !out
                done
              end
            done;
            List.rev !out)
          sites
        |> List.sort compare
      in
      cycle_found = not serializable_ref && dirty = dirty_ref)

(* --- action log --- *)

let test_action_log () =
  let log = Action_log.create () in
  Action_log.append log ~gid:1 { site = "a"; program = [ Program.Read "x" ]; tag = "t1" };
  Action_log.append log ~gid:1 { site = "b"; program = []; tag = "t2" };
  Action_log.append log ~gid:2 { site = "a"; program = []; tag = "t3" };
  Alcotest.(check int) "writes counted" 3 (Action_log.write_count log);
  Alcotest.(check int) "two pending" 2 (Action_log.pending log);
  (match Action_log.entries log ~gid:1 with
  | [ { tag = "t1"; _ }; { tag = "t2"; _ } ] -> ()
  | _ -> Alcotest.fail "order lost");
  Action_log.remove log ~gid:1;
  Alcotest.(check int) "one pending" 1 (Action_log.pending log);
  Alcotest.(check (list string)) "gone" []
    (List.map (fun (e : Action_log.entry) -> e.tag) (Action_log.entries log ~gid:1));
  Alcotest.(check int) "write count keeps history" 3 (Action_log.write_count log)

let () =
  Alcotest.run "core"
    [
      ( "2pc",
        [
          Alcotest.test_case "commit" `Quick test_2pc_commit;
          Alcotest.test_case "fig3 commit points" `Quick test_2pc_commit_points_fig3;
          Alcotest.test_case "unsupported site" `Quick test_2pc_unsupported_site;
          Alcotest.test_case "vote abort" `Quick test_2pc_vote_abort;
          Alcotest.test_case "execution failure" `Quick test_2pc_execution_failure_aborts_all;
          Alcotest.test_case "crash matrix atomicity" `Quick test_2pc_crash_matrix_atomicity;
        ] );
      ( "commit-after",
        [
          Alcotest.test_case "commit" `Quick test_after_commit;
          Alcotest.test_case "fig5 commit points" `Quick test_after_commit_points_fig5;
          Alcotest.test_case "repetition after erroneous abort" `Quick
            test_after_erroneous_abort_triggers_repetition;
          Alcotest.test_case "kill before ready" `Quick
            test_after_kill_before_ready_aborts_globally;
          Alcotest.test_case "crash matrix atomicity" `Quick test_after_crash_matrix_atomicity;
          Alcotest.test_case "global CC serializes" `Quick
            test_after_global_cc_blocks_conflicting_submission;
          Alcotest.test_case "occ validation failure repeats" `Quick
            test_after_occ_validation_failure_repeats;
        ] );
      ( "commit-before",
        [
          Alcotest.test_case "commit" `Quick test_before_commit;
          Alcotest.test_case "fig7 commit points" `Quick test_before_commit_points_fig7;
          Alcotest.test_case "mixed outcome compensates" `Quick
            test_before_mixed_outcome_compensates;
          Alcotest.test_case "waits for crashed site" `Quick
            test_before_crash_before_answer_waits_for_recovery;
          Alcotest.test_case "crash matrix atomicity" `Quick test_before_crash_matrix_atomicity;
        ] );
      ( "serializability-requirements",
        [
          Alcotest.test_case "before: dirty read without CC" `Quick
            test_before_dirty_read_without_global_cc;
          Alcotest.test_case "before: CC prevents dirty read" `Quick
            test_before_global_cc_prevents_dirty_read;
          Alcotest.test_case "after: order flip without CC" `Quick
            test_after_order_flip_without_global_cc;
          Alcotest.test_case "after: CC prevents order flip" `Quick
            test_after_global_cc_prevents_order_flip;
        ] );
      ( "mlt",
        [
          Alcotest.test_case "commit" `Quick test_mlt_commit;
          Alcotest.test_case "intended abort compensates" `Quick
            test_mlt_intended_abort_compensates;
          Alcotest.test_case "local failure compensates" `Quick
            test_mlt_local_failure_compensates;
          Alcotest.test_case "commuting actions concurrent" `Quick
            test_mlt_commuting_actions_concurrent;
          Alcotest.test_case "fig8 page-level vs mlt" `Quick test_fig8_page_level_vs_mlt;
        ] );
      ( "messages",
        [ Alcotest.test_case "per-protocol counts" `Quick test_message_counts ] );
      ( "graph",
        [
          Alcotest.test_case "conflict classification" `Quick
            test_graph_conflict_classification;
          Alcotest.test_case "cycle detection" `Quick test_graph_detects_cycle;
          Alcotest.test_case "serial order ok" `Quick test_graph_serial_order_ok;
          Alcotest.test_case "dirty read window" `Quick test_graph_dirty_read_window;
        ] );
      ( "action-log",
        [ Alcotest.test_case "append/entries/remove" `Quick test_action_log ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_graph_matches_bruteforce;
          QCheck_alcotest.to_alcotest prop_graph_matches_reference_oracle;
        ] );
    ]
