(* Tests for Icdb_storage: slotted pages, record codec, disk, buffer pool,
   heap files. *)

module Page = Icdb_storage.Page
module Disk = Icdb_storage.Disk
module Bp = Icdb_storage.Buffer_pool
module Record = Icdb_storage.Record
module Heap = Icdb_storage.Heap

let payload s = Bytes.of_string s

let bytes_testable =
  Alcotest.testable (fun fmt b -> Format.fprintf fmt "%S" (Bytes.to_string b)) Bytes.equal

(* --- Page --- *)

let test_page_insert_read () =
  let p = Page.create () in
  let s0 = Option.get (Page.insert p ~payload:(payload "hello")) in
  let s1 = Option.get (Page.insert p ~payload:(payload "world!")) in
  Alcotest.(check bool) "distinct slots" true (s0 <> s1);
  Alcotest.(check (option bytes_testable)) "read s0" (Some (payload "hello"))
    (Page.read p ~slot:s0);
  Alcotest.(check (option bytes_testable)) "read s1" (Some (payload "world!"))
    (Page.read p ~slot:s1)

let test_page_read_invalid () =
  let p = Page.create () in
  Alcotest.(check (option bytes_testable)) "out of range" None (Page.read p ~slot:3);
  Alcotest.(check (option bytes_testable)) "negative" None (Page.read p ~slot:(-1))

let test_page_delete_no_reuse () =
  let p = Page.create () in
  let s0 = Option.get (Page.insert p ~payload:(payload "aaa")) in
  let _s1 = Option.get (Page.insert p ~payload:(payload "bbb")) in
  Alcotest.(check bool) "delete live" true (Page.delete p ~slot:s0);
  Alcotest.(check bool) "delete dead" false (Page.delete p ~slot:s0);
  Alcotest.(check (option bytes_testable)) "dead reads None" None (Page.read p ~slot:s0);
  (* A dead slot is never reused by a fresh insert (it may still be the
     target of somebody's rollback); the directory grows instead. *)
  let s2 = Option.get (Page.insert p ~payload:(payload "ccc")) in
  Alcotest.(check bool) "fresh slot" true (s2 <> s0);
  Alcotest.(check int) "directory grew" 3 (Page.slot_count p);
  (* Only an explicit insert_at (rollback/redo) may revive it. *)
  Alcotest.(check bool) "insert_at revives" true
    (Page.insert_at p ~slot:s0 ~payload:(payload "zzz"))

let test_page_update_same_size () =
  let p = Page.create () in
  let s = Option.get (Page.insert p ~payload:(payload "12345")) in
  Alcotest.(check bool) "update ok" true (Page.update p ~slot:s ~payload:(payload "54321"));
  Alcotest.(check (option bytes_testable)) "new value" (Some (payload "54321"))
    (Page.read p ~slot:s)

let test_page_update_resize () =
  let p = Page.create () in
  let s = Option.get (Page.insert p ~payload:(payload "short")) in
  let other = Option.get (Page.insert p ~payload:(payload "other")) in
  Alcotest.(check bool) "grow" true
    (Page.update p ~slot:s ~payload:(payload "a much longer payload"));
  Alcotest.(check (option bytes_testable)) "grown value"
    (Some (payload "a much longer payload"))
    (Page.read p ~slot:s);
  Alcotest.(check (option bytes_testable)) "neighbour untouched" (Some (payload "other"))
    (Page.read p ~slot:other)

let test_page_update_dead () =
  let p = Page.create () in
  Alcotest.(check bool) "update dead slot" false (Page.update p ~slot:0 ~payload:(payload "x"))

let test_page_fill_until_full () =
  let p = Page.create () in
  let n = ref 0 in
  let body = String.make 100 'x' in
  (try
     while true do
       match Page.insert p ~payload:(payload body) with
       | Some _ -> incr n
       | None -> raise Exit
     done
   with Exit -> ());
  (* 4096 bytes, 12 header, 104 per record (100 payload + 4 dir entry). *)
  Alcotest.(check bool) "fits roughly 39 records" true (!n >= 38 && !n <= 40);
  Alcotest.(check bool) "page reports little space" true (Page.free_space p < 104)

let test_page_compaction_recovers_space () =
  let p = Page.create () in
  let slots = ref [] in
  let body = String.make 100 'x' in
  (try
     while true do
       match Page.insert p ~payload:(payload body) with
       | Some s -> slots := s :: !slots
       | None -> raise Exit
     done
   with Exit -> ());
  (* Delete every other record: space is fragmented 100-byte holes. *)
  List.iteri (fun i s -> if i mod 2 = 0 then ignore (Page.delete p ~slot:s)) !slots;
  (* A 150-byte record only fits after compaction. *)
  let s = Page.insert p ~payload:(payload (String.make 150 'y')) in
  Alcotest.(check bool) "insert after compaction" true (Option.is_some s);
  Alcotest.(check (option bytes_testable)) "compacted read intact"
    (Some (payload (String.make 150 'y')))
    (Page.read p ~slot:(Option.get s))

let test_page_insert_at () =
  let p = Page.create () in
  Alcotest.(check bool) "place at slot 3" true (Page.insert_at p ~slot:3 ~payload:(payload "x"));
  Alcotest.(check int) "directory grew" 4 (Page.slot_count p);
  Alcotest.(check bool) "live slot refused" false
    (Page.insert_at p ~slot:3 ~payload:(payload "y"));
  Alcotest.(check bool) "intermediate slot dead" true (Page.read p ~slot:1 = None);
  Alcotest.(check bool) "fill intermediate" true (Page.insert_at p ~slot:1 ~payload:(payload "z"));
  Alcotest.(check (option bytes_testable)) "read back" (Some (payload "z")) (Page.read p ~slot:1)

let test_page_lsn () =
  let p = Page.create () in
  Alcotest.(check int64) "fresh lsn" 0L (Page.lsn p);
  Page.set_lsn p 42L;
  Alcotest.(check int64) "set lsn" 42L (Page.lsn p);
  let q = Page.copy p in
  Page.set_lsn p 50L;
  Alcotest.(check int64) "copy isolated" 42L (Page.lsn q)

let test_page_live () =
  let p = Page.create () in
  let s0 = Option.get (Page.insert p ~payload:(payload "a")) in
  let s1 = Option.get (Page.insert p ~payload:(payload "b")) in
  ignore (Page.delete p ~slot:s0);
  Alcotest.(check (list (pair int bytes_testable))) "only live" [ (s1, payload "b") ]
    (Page.live p)

(* --- Record --- *)

let test_record_roundtrip () =
  let b = Record.encode ~key:"account-17" ~value:12345 in
  Alcotest.(check (pair string int)) "roundtrip" ("account-17", 12345) (Record.decode b);
  let b = Record.encode ~key:"k" ~value:(-99) in
  Alcotest.(check (pair string int)) "negative value" ("k", -99) (Record.decode b)

let test_record_invalid () =
  Alcotest.check_raises "empty key" (Invalid_argument "Record: key must be 1..255 bytes")
    (fun () -> ignore (Record.encode ~key:"" ~value:0));
  Alcotest.check_raises "long key" (Invalid_argument "Record: key must be 1..255 bytes")
    (fun () -> ignore (Record.encode ~key:(String.make 256 'k') ~value:0))

let prop_record_roundtrip =
  QCheck2.Test.make ~name:"record encode/decode roundtrip" ~count:500
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 1 255)) int)
    (fun (key, value) -> Record.decode (Record.encode ~key ~value) = (key, value))

(* --- Disk --- *)

let test_disk_copy_semantics () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let p = Page.create () in
  ignore (Page.insert p ~payload:(payload "v1"));
  Disk.write d pid p;
  (* Mutating the in-memory page must not change the stable image. *)
  ignore (Page.update p ~slot:0 ~payload:(payload "v2"));
  let stable = Disk.read d pid in
  Alcotest.(check (option bytes_testable)) "stable kept v1" (Some (payload "v1"))
    (Page.read stable ~slot:0)

let test_disk_bounds () =
  let d = Disk.create () in
  Alcotest.check_raises "read unallocated" (Invalid_argument "Disk: unallocated page id")
    (fun () -> ignore (Disk.read d 0))

let test_disk_counters () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  ignore (Disk.read d pid);
  Disk.write d pid (Page.create ());
  Alcotest.(check int) "reads" 1 (Disk.read_count d);
  Alcotest.(check int) "writes" 1 (Disk.write_count d);
  Disk.reset_counters d;
  Alcotest.(check int) "reset" 0 (Disk.read_count d + Disk.write_count d)

(* --- Buffer pool --- *)

let test_pool_caches () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Bp.create ~capacity:4 d in
  Bp.with_page pool pid ~write:false (fun _ -> ());
  Bp.with_page pool pid ~write:false (fun _ -> ());
  Alcotest.(check int) "one miss" 1 (Bp.miss_count pool);
  Alcotest.(check int) "one hit" 1 (Bp.hit_count pool)

exception Boom

(* Regression: an exception out of [f] used to leave the frame pinned (and
   undirtied), so the page could never be evicted again. *)
let test_pool_pin_balance_on_exception () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Bp.create ~capacity:4 d in
  Alcotest.check_raises "exception propagates" Boom (fun () ->
      Bp.with_page pool pid ~write:true (fun _ -> raise Boom));
  Alcotest.(check int) "no pin leaked" 0 (Bp.pin_count pool);
  (* The page must still be evictable: touching [capacity] other pages from
     a full pool only works if the first frame's pin was released. *)
  let others = List.init 4 (fun _ -> Disk.allocate d) in
  List.iter (fun p -> Bp.with_page pool p ~write:false (fun _ -> ())) others;
  Alcotest.(check int) "balanced after traffic" 0 (Bp.pin_count pool)

let test_pool_eviction_writes_dirty () =
  let d = Disk.create () in
  let pids = List.init 5 (fun _ -> Disk.allocate d) in
  let pool = Bp.create ~capacity:2 d in
  (match pids with
  | p0 :: _ ->
    Bp.with_page pool p0 ~write:true (fun page ->
        ignore (Page.insert page ~payload:(payload "dirty")))
  | [] -> assert false);
  (* Touch the rest to force eviction of p0. *)
  List.iteri (fun i pid -> if i > 0 then Bp.with_page pool pid ~write:false (fun _ -> ())) pids;
  Alcotest.(check bool) "evictions happened" true (Bp.eviction_count pool > 0);
  let stable = Disk.read d (List.hd pids) in
  Alcotest.(check (option bytes_testable)) "dirty page reached disk" (Some (payload "dirty"))
    (Page.read stable ~slot:0)

let test_pool_wal_hook_fires_before_write () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Bp.create ~capacity:1 d in
  let calls = ref [] in
  Bp.set_wal_hook pool (fun ~lsn -> calls := lsn :: !calls);
  Bp.with_page pool pid ~write:true (fun page ->
      ignore (Page.insert page ~payload:(payload "x"));
      Page.set_lsn page 7L);
  Bp.flush_page pool pid;
  Alcotest.(check (list int64)) "hook saw the page lsn" [ 7L ] !calls;
  (* Flushing a clean page again must not re-invoke the hook. *)
  Bp.flush_page pool pid;
  Alcotest.(check int) "no duplicate hook" 1 (List.length !calls)

let test_pool_drop_all_discards () =
  let d = Disk.create () in
  let pid = Disk.allocate d in
  let pool = Bp.create ~capacity:2 d in
  Bp.with_page pool pid ~write:true (fun page ->
      ignore (Page.insert page ~payload:(payload "volatile")));
  Bp.drop_all pool;
  let stable = Disk.read d pid in
  Alcotest.(check (option bytes_testable)) "write lost on crash" None (Page.read stable ~slot:0)

let test_pool_dirty_pages () =
  let d = Disk.create () in
  let p0 = Disk.allocate d and p1 = Disk.allocate d in
  let pool = Bp.create ~capacity:4 d in
  Bp.with_page pool p0 ~write:true (fun _ -> ());
  Bp.with_page pool p1 ~write:false (fun _ -> ());
  Alcotest.(check (list int)) "only written page dirty" [ p0 ] (Bp.dirty_pages pool);
  Bp.flush_all pool;
  Alcotest.(check (list int)) "clean after flush" [] (Bp.dirty_pages pool)

let test_pool_all_pinned () =
  let d = Disk.create () in
  let p0 = Disk.allocate d and p1 = Disk.allocate d in
  let pool = Bp.create ~capacity:1 d in
  Alcotest.check_raises "cannot evict pinned" (Failure "Buffer_pool: all frames pinned")
    (fun () ->
      Bp.with_page pool p0 ~write:false (fun _ ->
          Bp.with_page pool p1 ~write:false (fun _ -> ())))

(* --- Heap --- *)

let test_heap_insert_read_update_delete () =
  let d = Disk.create () in
  let pool = Bp.create ~capacity:8 d in
  let h = Heap.create d pool in
  let rid = Heap.insert h ~lsn:1L ~key:"a" ~value:10 in
  Alcotest.(check (option (pair string int))) "read" (Some ("a", 10)) (Heap.read h rid);
  Alcotest.(check bool) "update" true (Heap.update h ~lsn:2L rid ~value:20);
  Alcotest.(check (option (pair string int))) "updated" (Some ("a", 20)) (Heap.read h rid);
  Alcotest.(check bool) "delete" true (Heap.delete h ~lsn:3L rid);
  Alcotest.(check (option (pair string int))) "gone" None (Heap.read h rid);
  Alcotest.(check bool) "double delete" false (Heap.delete h ~lsn:4L rid)

let test_heap_colocation_and_growth () =
  let d = Disk.create () in
  let pool = Bp.create ~capacity:8 d in
  let h = Heap.create d pool in
  let r0 = Heap.insert h ~lsn:1L ~key:"x" ~value:1 in
  let r1 = Heap.insert h ~lsn:2L ~key:"y" ~value:2 in
  Alcotest.(check int) "consecutive inserts share a page" r0.Heap.page r1.Heap.page;
  (* Insert enough records to spill onto more pages. *)
  for i = 0 to 400 do
    ignore (Heap.insert h ~lsn:(Int64.of_int (i + 3)) ~key:(Printf.sprintf "k%03d" i) ~value:i)
  done;
  Alcotest.(check bool) "multiple pages" true (List.length (Heap.page_ids h) > 1);
  Alcotest.(check int) "count" 403 (Heap.count h)

let test_heap_insert_at_restores_rid () =
  let d = Disk.create () in
  let pool = Bp.create ~capacity:8 d in
  let h = Heap.create d pool in
  let rid = Heap.insert h ~lsn:1L ~key:"a" ~value:1 in
  ignore (Heap.delete h ~lsn:2L rid);
  Alcotest.(check bool) "restore" true (Heap.insert_at h ~lsn:3L rid ~key:"a" ~value:1);
  Alcotest.(check (option (pair string int))) "restored" (Some ("a", 1)) (Heap.read h rid);
  Alcotest.(check bool) "live slot refused" false
    (Heap.insert_at h ~lsn:4L rid ~key:"a" ~value:2)

let test_heap_recover_scans_disk () =
  let d = Disk.create () in
  let pool = Bp.create ~capacity:8 d in
  let h = Heap.create d pool in
  for i = 0 to 99 do
    ignore (Heap.insert h ~lsn:(Int64.of_int (i + 1)) ~key:(Printf.sprintf "k%d" i) ~value:i)
  done;
  Bp.flush_all pool;
  (* Fresh pool + recovered heap sees the same records. *)
  let pool2 = Bp.create ~capacity:8 d in
  let h2 = Heap.recover d pool2 in
  Alcotest.(check int) "recovered count" 100 (Heap.count h2);
  let found = ref 0 in
  Heap.iter h2 (fun _ key value ->
      if key = Printf.sprintf "k%d" value then incr found);
  Alcotest.(check int) "keys consistent" 100 !found

let test_heap_iter_order_stable () =
  let d = Disk.create () in
  let pool = Bp.create ~capacity:8 d in
  let h = Heap.create d pool in
  ignore (Heap.insert h ~lsn:1L ~key:"a" ~value:1);
  ignore (Heap.insert h ~lsn:2L ~key:"b" ~value:2);
  let keys = ref [] in
  Heap.iter h (fun _ key _ -> keys := key :: !keys);
  Alcotest.(check (list string)) "iteration order" [ "a"; "b" ] (List.rev !keys)

(* Model-based property: random heap mutations agree with a Map model, and
   the heap recovered from a cold disk (after flushing) agrees too. *)
module StrMap = Map.Make (String)

let prop_heap_model =
  QCheck2.Test.make ~name:"heap agrees with a Map model (and across recover)" ~count:60
    QCheck2.Gen.(list_size (int_range 1 150) (triple (int_range 0 2) (int_range 0 40) int))
    (fun ops ->
      let d = Disk.create () in
      let pool = Bp.create ~capacity:4 d in
      let h = Heap.create d pool in
      let model = ref StrMap.empty in
      let rids = Hashtbl.create 16 in
      let lsn = ref 0L in
      let next_lsn () =
        lsn := Int64.add !lsn 1L;
        !lsn
      in
      List.iter
        (fun (op, ki, v) ->
          let key = Printf.sprintf "k%02d" ki in
          match op with
          | 0 ->
            if not (StrMap.mem key !model) then begin
              let rid = Heap.insert h ~lsn:(next_lsn ()) ~key ~value:v in
              Hashtbl.replace rids key rid;
              model := StrMap.add key v !model
            end
          | 1 -> (
            match Hashtbl.find_opt rids key with
            | Some rid when StrMap.mem key !model ->
              ignore (Heap.update h ~lsn:(next_lsn ()) rid ~value:v);
              model := StrMap.add key v !model
            | _ -> ())
          | _ -> (
            match Hashtbl.find_opt rids key with
            | Some rid when StrMap.mem key !model ->
              ignore (Heap.delete h ~lsn:(next_lsn ()) rid);
              model := StrMap.remove key !model
            | _ -> ()))
        ops;
      let agree heap =
        let found = ref StrMap.empty in
        Heap.iter heap (fun _ key value -> found := StrMap.add key value !found);
        StrMap.equal ( = ) !found !model
      in
      let live_ok = agree h in
      (* Cold restart: flush, fresh pool, recover. *)
      Bp.flush_all pool;
      let pool2 = Bp.create ~capacity:4 d in
      let h2 = Heap.recover d pool2 in
      live_ok && agree h2)

(* A tiny 2-frame pool under a scattered access pattern must still persist
   every write once flushed. *)
let test_pool_thrashing_durability () =
  let d = Disk.create () in
  let pids = List.init 12 (fun _ -> Disk.allocate d) in
  let pool = Bp.create ~capacity:2 d in
  List.iteri
    (fun i pid ->
      Bp.with_page pool pid ~write:true (fun page ->
          ignore (Page.insert page ~payload:(payload (Printf.sprintf "v%d" i)))))
    pids;
  Bp.flush_all pool;
  List.iteri
    (fun i pid ->
      let stable = Disk.read d pid in
      Alcotest.(check (option bytes_testable))
        (Printf.sprintf "page %d durable" pid)
        (Some (payload (Printf.sprintf "v%d" i)))
        (Page.read stable ~slot:0))
    pids;
  Alcotest.(check bool) "evictions happened" true (Bp.eviction_count pool >= 10)

let () =
  Alcotest.run "storage"
    [
      ( "page",
        [
          Alcotest.test_case "insert/read" `Quick test_page_insert_read;
          Alcotest.test_case "read invalid" `Quick test_page_read_invalid;
          Alcotest.test_case "delete never reuses slots" `Quick test_page_delete_no_reuse;
          Alcotest.test_case "update same size" `Quick test_page_update_same_size;
          Alcotest.test_case "update resize" `Quick test_page_update_resize;
          Alcotest.test_case "update dead" `Quick test_page_update_dead;
          Alcotest.test_case "fill until full" `Quick test_page_fill_until_full;
          Alcotest.test_case "compaction" `Quick test_page_compaction_recovers_space;
          Alcotest.test_case "insert_at" `Quick test_page_insert_at;
          Alcotest.test_case "lsn" `Quick test_page_lsn;
          Alcotest.test_case "live listing" `Quick test_page_live;
        ] );
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "invalid keys" `Quick test_record_invalid;
          QCheck_alcotest.to_alcotest prop_record_roundtrip;
        ] );
      ( "disk",
        [
          Alcotest.test_case "copy semantics" `Quick test_disk_copy_semantics;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
          Alcotest.test_case "counters" `Quick test_disk_counters;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "caches" `Quick test_pool_caches;
          Alcotest.test_case "pin balance on exception" `Quick
            test_pool_pin_balance_on_exception;
          Alcotest.test_case "eviction writes dirty" `Quick test_pool_eviction_writes_dirty;
          Alcotest.test_case "wal hook" `Quick test_pool_wal_hook_fires_before_write;
          Alcotest.test_case "drop_all discards" `Quick test_pool_drop_all_discards;
          Alcotest.test_case "dirty pages" `Quick test_pool_dirty_pages;
          Alcotest.test_case "all pinned" `Quick test_pool_all_pinned;
        ] );
      ( "heap",
        [
          Alcotest.test_case "crud" `Quick test_heap_insert_read_update_delete;
          Alcotest.test_case "colocation and growth" `Quick test_heap_colocation_and_growth;
          Alcotest.test_case "insert_at restores rid" `Quick test_heap_insert_at_restores_rid;
          Alcotest.test_case "recover" `Quick test_heap_recover_scans_disk;
          Alcotest.test_case "iter order" `Quick test_heap_iter_order_stable;
          QCheck_alcotest.to_alcotest prop_heap_model;
        ] );
      ( "stress",
        [ Alcotest.test_case "pool thrashing durability" `Quick test_pool_thrashing_durability ]
      );
    ]
