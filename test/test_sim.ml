(* Tests for Icdb_sim: event engine, fibers, ivars, mailboxes, traces. *)

module Engine = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace

(* --- Engine --- *)

let test_engine_time_order () =
  let eng = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> seen := 5 :: !seen));
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> seen := 1 :: !seen));
  ignore (Engine.schedule eng ~delay:3.0 (fun () -> seen := 3 :: !seen));
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "clock at last event" 5.0 (Engine.now eng)

let test_engine_fifo_same_time () =
  let eng = Engine.create () in
  let seen = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:2.0 (fun () -> seen := i :: !seen))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ] (List.rev !seen)

let test_engine_nested_schedule () =
  let eng = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         times := Engine.now eng :: !times;
         ignore (Engine.schedule eng ~delay:2.0 (fun () -> times := Engine.now eng :: !times))));
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "relative delays" [ 1.0; 3.0 ] (List.rev !times)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule eng ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel eng id;
  Alcotest.(check int) "pending drops" 0 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_engine_negative_delay () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule eng ~delay:(-1.0) (fun () -> ())))

let test_engine_run_until () =
  let eng = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> seen := 1 :: !seen));
  ignore (Engine.schedule eng ~delay:10.0 (fun () -> seen := 10 :: !seen));
  Engine.run_until eng 5.0;
  Alcotest.(check (list int)) "only due events" [ 1 ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 5.0 (Engine.now eng);
  Alcotest.(check int) "late event still pending" 1 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list int)) "late event eventually fires" [ 1; 10 ] (List.rev !seen)

let test_engine_step () =
  let eng = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> incr count));
  ignore (Engine.schedule eng ~delay:2.0 (fun () -> incr count));
  Alcotest.(check bool) "step fires one" true (Engine.step eng);
  Alcotest.(check int) "one fired" 1 !count;
  Alcotest.(check bool) "second step" true (Engine.step eng);
  Alcotest.(check bool) "exhausted" false (Engine.step eng)

(* --- Calendar queue vs reference heap --- *)

module Engine_ref = Icdb_sim.Engine_ref
module Rng = Icdb_util.Rng

(* Random interleavings of push / pop / cancel / clock-advance, replayed
   against both the calendar engine (threshold 64, so toy-sized runs still
   activate it) and the pre-calendar binary heap kept as Engine_ref. Delays
   are multiples of 0.5 so same-time ties are frequent and float arithmetic
   is exact; every fired event records (time, push serial), and the two
   execution logs must match exactly. *)
type qop = QPush of int | QPop | QCancel of int | QAdvance of int

let prop_calendar_equals_heap =
  QCheck2.Test.make ~name:"calendar queue = reference heap pop order" ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 400)
        (frequency
           [
             (5, map (fun d -> QPush d) (int_range 0 40));
             (2, return QPop);
             (1, map (fun i -> QCancel i) (int_range 0 1000));
             (1, map (fun h -> QAdvance h) (int_range 0 60));
           ]))
    (fun ops ->
      let e = Engine.create ~threshold:64 () in
      let r = Engine_ref.create () in
      let seen_e = ref [] and seen_r = ref [] in
      let ids_e = ref [] and ids_r = ref [] in
      let n_ids = ref 0 in
      let pushes = ref 0 in
      List.iter
        (fun op ->
          match op with
          | QPush d ->
            let delay = float_of_int d *. 0.5 in
            let k = !pushes in
            incr pushes;
            ids_e :=
              Engine.schedule e ~delay (fun () -> seen_e := (Engine.now e, k) :: !seen_e)
              :: !ids_e;
            ids_r :=
              Engine_ref.schedule r ~delay (fun () ->
                  seen_r := (Engine_ref.now r, k) :: !seen_r)
              :: !ids_r;
            incr n_ids
          | QPop ->
            ignore (Engine.step e);
            ignore (Engine_ref.step r)
          | QCancel i ->
            if !n_ids > 0 then begin
              let j = i mod !n_ids in
              Engine.cancel e (List.nth !ids_e j);
              Engine_ref.cancel r (List.nth !ids_r j)
            end
          | QAdvance h ->
            let horizon = Engine.now e +. (float_of_int h *. 0.5) in
            Engine.run_until e horizon;
            Engine_ref.run_until r horizon)
        ops;
      Engine.run e;
      Engine_ref.run r;
      !seen_e = !seen_r
      && Engine.pending e = Engine_ref.pending r
      && Engine.stored e = 0)

(* Deep calendar exercise: tens of thousands of pending events with skewed
   delays, well past the activation threshold, must drain in exact
   nondecreasing (time, seq) order with nothing lost. *)
let test_engine_calendar_scale () =
  let eng = Engine.create ~threshold:64 () in
  let rng = Rng.create 7L in
  let n = 20_000 in
  let fired = ref 0 in
  let last = ref (-1.0) in
  let monotone = ref true in
  for _ = 1 to n do
    let delay = Rng.exponential rng ~mean:50.0 in
    ignore
      (Engine.schedule eng ~delay (fun () ->
           let t = Engine.now eng in
           if t < !last then monotone := false;
           last := t;
           incr fired))
  done;
  Alcotest.(check bool) "calendar activated" true (Engine.calendar_active eng);
  Alcotest.(check int) "all pending" n (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check int) "all fired" n !fired;
  Alcotest.(check bool) "time order preserved" true !monotone;
  Alcotest.(check int) "drained" 0 (Engine.pending eng);
  Alcotest.(check int) "no carcasses retained" 0 (Engine.stored eng)

(* Cancelling nearly everything must compact the store instead of dragging
   dead events along until they surface at the root. *)
let test_engine_cancel_compaction () =
  let eng = Engine.create ~threshold:64 () in
  let rng = Rng.create 11L in
  let n = 10_000 in
  let ids = Array.make n None in
  let fired = ref 0 in
  for i = 0 to n - 1 do
    let delay = Rng.exponential rng ~mean:20.0 in
    ids.(i) <- Some (Engine.schedule eng ~delay (fun () -> incr fired))
  done;
  for i = 0 to n - 1 do
    if i mod 100 <> 0 then Engine.cancel eng (Option.get ids.(i))
  done;
  let live = Engine.pending eng in
  Alcotest.(check int) "live after cancels" 100 live;
  Alcotest.(check bool)
    (Printf.sprintf "compacted (stored %d <= 2*live + 64)" (Engine.stored eng))
    true
    (Engine.stored eng <= (2 * live) + 64);
  Engine.run eng;
  Alcotest.(check int) "survivors fired" 100 !fired;
  Alcotest.(check int) "stored drained" 0 (Engine.stored eng)

let test_engine_resize_hook () =
  let eng = Engine.create ~threshold:64 () in
  let rng = Rng.create 3L in
  let calls = ref 0 in
  let last_buckets = ref 0 in
  let last_events = ref 0 in
  Engine.set_resize_hook eng (fun ~buckets ~width ~events ->
      incr calls;
      last_buckets := buckets;
      last_events := events;
      Alcotest.(check bool) "positive width" true (width > 0.0));
  for _ = 1 to 1_000 do
    ignore (Engine.schedule eng ~delay:(Rng.exponential rng ~mean:100.0) (fun () -> ()))
  done;
  Alcotest.(check bool) "hook called on activation" true (!calls >= 1);
  Alcotest.(check bool) "buckets reported" true (!last_buckets > 0);
  Alcotest.(check bool) "events reported" true (!last_events > 0);
  Engine.run eng;
  Alcotest.(check bool) "calendar off after drain" false (Engine.calendar_active eng)

(* --- Fibers --- *)

let test_fiber_sleep_interleaving () =
  let eng = Engine.create () in
  let order = ref [] in
  Fiber.spawn eng (fun () ->
      order := "a0" :: !order;
      Fiber.sleep eng 3.0;
      order := "a1" :: !order);
  Fiber.spawn eng (fun () ->
      order := "b0" :: !order;
      Fiber.sleep eng 1.0;
      order := "b1" :: !order);
  Engine.run eng;
  Alcotest.(check (list string)) "interleaving" [ "a0"; "b0"; "b1"; "a1" ] (List.rev !order)

let test_fiber_yield () =
  let eng = Engine.create () in
  let order = ref [] in
  Fiber.spawn eng (fun () ->
      order := 1 :: !order;
      Fiber.yield eng;
      order := 3 :: !order);
  Fiber.spawn eng (fun () -> order := 2 :: !order);
  Engine.run eng;
  Alcotest.(check (list int)) "yield lets others run" [ 1; 2; 3 ] (List.rev !order)

let test_fiber_on_error () =
  let eng = Engine.create () in
  let caught = ref "" in
  Fiber.spawn eng
    ~on_error:(fun e -> caught := Printexc.to_string e)
    (fun () -> failwith "boom");
  Engine.run eng;
  Alcotest.(check bool) "error handler ran" true (!caught <> "")

let test_fiber_error_after_suspension () =
  let eng = Engine.create () in
  let caught = ref false in
  Fiber.spawn eng
    ~on_error:(fun _ -> caught := true)
    (fun () ->
      Fiber.sleep eng 1.0;
      failwith "late boom");
  Engine.run eng;
  Alcotest.(check bool) "handler catches post-suspend raise" true !caught

let test_fiber_await_resume_once () =
  let eng = Engine.create () in
  let stash = ref None in
  let resumed = ref 0 in
  Fiber.spawn eng (fun () ->
      let v = Fiber.await (fun resume -> stash := Some resume) in
      resumed := v);
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         let resume = Option.get !stash in
         resume (Ok 7);
         resume (Ok 99) (* must be ignored *)));
  Engine.run eng;
  Alcotest.(check int) "first resume wins" 7 !resumed

let test_fiber_await_error () =
  let eng = Engine.create () in
  let result = ref "no" in
  Fiber.spawn eng (fun () ->
      match Fiber.await (fun resume -> resume (Error Exit)) with
      | () -> result := "returned"
      | exception Exit -> result := "raised");
  Engine.run eng;
  Alcotest.(check string) "error resumes as exception" "raised" !result

(* --- Ivar --- *)

let test_ivar_fill_then_read () =
  let eng = Engine.create () in
  let iv = Fiber.Ivar.create eng in
  Fiber.Ivar.fill iv 42;
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Fiber.Ivar.read iv);
  Engine.run eng;
  Alcotest.(check int) "read filled" 42 !got

let test_ivar_read_blocks_until_fill () =
  let eng = Engine.create () in
  let iv = Fiber.Ivar.create eng in
  let got = ref [] in
  Fiber.spawn eng (fun () ->
      let v = Fiber.Ivar.read iv in
      got := ("r1", v) :: !got);
  Fiber.spawn eng (fun () ->
      let v = Fiber.Ivar.read iv in
      got := ("r2", v) :: !got);
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 5.0;
      Fiber.Ivar.fill iv 9);
  Engine.run eng;
  Alcotest.(check int) "both woken" 2 (List.length !got);
  List.iter (fun (_, v) -> Alcotest.(check int) "value" 9 v) !got

let test_ivar_double_fill () =
  let eng = Engine.create () in
  let iv = Fiber.Ivar.create eng in
  Fiber.Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Fiber.Ivar.fill: already filled")
    (fun () -> Fiber.Ivar.fill iv 2);
  Alcotest.(check bool) "is_filled" true (Fiber.Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 1) (Fiber.Ivar.peek iv)

(* --- Mailbox --- *)

let test_mailbox_send_recv () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  let got = ref [] in
  Fiber.spawn eng (fun () ->
      got := Fiber.Mailbox.recv mb :: !got;
      got := Fiber.Mailbox.recv mb :: !got);
  Fiber.spawn eng (fun () ->
      Fiber.Mailbox.send mb "x";
      Fiber.sleep eng 1.0;
      Fiber.Mailbox.send mb "y");
  Engine.run eng;
  Alcotest.(check (list string)) "fifo delivery" [ "x"; "y" ] (List.rev !got)

let test_mailbox_buffered () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  Fiber.Mailbox.send mb 1;
  Fiber.Mailbox.send mb 2;
  Alcotest.(check int) "length" 2 (Fiber.Mailbox.length mb);
  Alcotest.(check (option int)) "try_recv" (Some 1) (Fiber.Mailbox.try_recv mb);
  Alcotest.(check (option int)) "try_recv again" (Some 2) (Fiber.Mailbox.try_recv mb);
  Alcotest.(check (option int)) "empty" None (Fiber.Mailbox.try_recv mb)

let test_mailbox_recv_timeout_expires () =
  let eng = Engine.create () in
  let mb : int Fiber.Mailbox.t = Fiber.Mailbox.create eng in
  let got = ref (Some 0) in
  Fiber.spawn eng (fun () -> got := Fiber.Mailbox.recv_timeout mb 5.0);
  Engine.run eng;
  Alcotest.(check (option int)) "timed out" None !got;
  Alcotest.(check (float 1e-9)) "waited full timeout" 5.0 (Engine.now eng)

let test_mailbox_recv_timeout_delivers () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  let got = ref None in
  Fiber.spawn eng (fun () -> got := Fiber.Mailbox.recv_timeout mb 5.0);
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Fiber.Mailbox.send mb 3));
  Engine.run eng;
  Alcotest.(check (option int)) "delivered" (Some 3) !got

let test_mailbox_message_not_lost_after_timeout () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  let first = ref (Some 0) and second = ref None in
  Fiber.spawn eng (fun () ->
      first := Fiber.Mailbox.recv_timeout mb 2.0;
      (* message arrives after our timeout; a later recv must still get it *)
      Fiber.sleep eng 10.0;
      second := Fiber.Mailbox.recv_timeout mb 1.0);
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> Fiber.Mailbox.send mb 8));
  Engine.run eng;
  Alcotest.(check (option int)) "first timed out" None !first;
  Alcotest.(check (option int)) "second received buffered msg" (Some 8) !second

(* --- Trace --- *)

let test_trace_basic () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Fiber.spawn eng (fun () ->
      Trace.record tr ~actor:"a" "start";
      Fiber.sleep eng 2.0;
      Trace.record tr ~actor:"a" "done");
  Engine.run eng;
  Alcotest.(check int) "two entries" 2 (Trace.length tr);
  Alcotest.(check (option (float 1e-9))) "find start" (Some 0.0)
    (Trace.find tr ~actor:"a" ~label:"start");
  Alcotest.(check (option (float 1e-9))) "find done" (Some 2.0)
    (Trace.find tr ~actor:"a" ~label:"done");
  Alcotest.(check bool) "ordering" true (Trace.before tr ~first:"start" ~then_:"done");
  Alcotest.(check bool) "no reverse ordering" false (Trace.before tr ~first:"done" ~then_:"start")

let test_trace_find_all_and_clear () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Trace.record tr ~actor:"x" "m";
  Trace.record tr ~actor:"y" "m";
  Alcotest.(check int) "find_all" 2 (List.length (Trace.find_all tr ~label:"m"));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "calendar",
        [
          QCheck_alcotest.to_alcotest prop_calendar_equals_heap;
          Alcotest.test_case "20k-event drain order" `Quick test_engine_calendar_scale;
          Alcotest.test_case "cancel compaction" `Quick test_engine_cancel_compaction;
          Alcotest.test_case "resize hook" `Quick test_engine_resize_hook;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "sleep interleaving" `Quick test_fiber_sleep_interleaving;
          Alcotest.test_case "yield" `Quick test_fiber_yield;
          Alcotest.test_case "on_error" `Quick test_fiber_on_error;
          Alcotest.test_case "error after suspension" `Quick test_fiber_error_after_suspension;
          Alcotest.test_case "resume once" `Quick test_fiber_await_resume_once;
          Alcotest.test_case "await error" `Quick test_fiber_await_error;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks until fill" `Quick test_ivar_read_blocks_until_fill;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "send/recv" `Quick test_mailbox_send_recv;
          Alcotest.test_case "buffered" `Quick test_mailbox_buffered;
          Alcotest.test_case "timeout expires" `Quick test_mailbox_recv_timeout_expires;
          Alcotest.test_case "timeout delivers" `Quick test_mailbox_recv_timeout_delivers;
          Alcotest.test_case "no message loss after timeout" `Quick
            test_mailbox_message_not_lost_after_timeout;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "find_all and clear" `Quick test_trace_find_all_and_clear;
        ] );
    ]
