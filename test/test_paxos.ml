(* Tests for Paxos Commit over the replicated decision log: acceptor ballot
   rules, quorum durability with a replica down (F = 1), new-leader
   failover (completing a replicated commit, presuming abort on a silent
   quorum), recovery consulting the acceptor quorum and staying idempotent,
   the acceptors=1 == single-coordinator equivalence, the watchdog's
   silence on clean Paxos runs, and the acceptor-fault chaos campaign. *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine
module Site = Icdb_net.Site
module Federation = Icdb_core.Federation
module Central_recovery = Icdb_core.Central_recovery
module Paxos = Icdb_core.Paxos_commit
module Global = Icdb_core.Global
module Program = Icdb_localdb.Program
module Tpc = Icdb_core.Two_phase_commit
module Runner = Icdb_workload.Runner
module Overhead = Icdb_workload.Overhead
module Protocol = Icdb_workload.Protocol
module Availability = Icdb_workload.Availability
module Campaign = Icdb_fault.Campaign
module Plan = Icdb_fault.Plan
module Registry = Icdb_obs.Registry

let outcome_testable = Alcotest.testable Global.pp_outcome ( = )

let site_cfg name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = true;
        supports_increment_locks = true;
        granularity = Db.Record_level;
        cc = Locking { wait_timeout = Some 100.0 };
      };
  }

let make_fed ?(n = 3) eng =
  let configs = List.init n (fun i -> site_cfg (Printf.sprintf "s%d" i)) in
  Federation.create eng configs

let load_accounts fed rows =
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.Federation.sites

let value fed site key = Db.committed_value (Site.db (Federation.site fed site)) key

let in_sim eng f =
  let result = ref None in
  let failure = ref None in
  Fiber.spawn eng ~on_error:(fun e -> failure := Some e) (fun () -> result := Some (f ()));
  Sim.run eng;
  match !failure with
  | Some e -> raise e
  | None -> Option.get !result

let spec fed sites =
  {
    Global.gid = Federation.fresh_gid fed;
    branches =
      List.map
        (fun (site, delta) ->
          Global.branch ~vote_commit:true ~site [ Program.Increment ("x", delta) ])
        sites;
  }

(* --- acceptor ballot rules ------------------------------------------------ *)

let test_acceptor_ballot_rules () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  let a = Paxos.Acceptor.create (Federation.site fed "s0") in
  (* ballot 0 vote on a fresh instance *)
  Alcotest.(check bool) "ballot-0 accept" true
    (Paxos.Acceptor.receive_accept a ~gid:1 ~ballot:0 ~value:true);
  Alcotest.(check (option (pair int bool))) "vote recorded" (Some (0, true))
    (Paxos.Acceptor.accepted a ~gid:1);
  Alcotest.(check int) "one force" 1 (Paxos.Acceptor.forces a);
  (* a higher prepare promises and reports the vote *)
  (match Paxos.Acceptor.receive_prepare a ~gid:1 ~ballot:2 with
  | Paxos.Acceptor.Promised (Some (0, true)) -> ()
  | Paxos.Acceptor.Promised _ -> Alcotest.fail "promise lost the accepted vote"
  | Paxos.Acceptor.Rejected -> Alcotest.fail "higher ballot rejected");
  Alcotest.(check int) "promise forced" 2 (Paxos.Acceptor.forces a);
  (* stale ballots bounce off the promise *)
  Alcotest.(check bool) "stale accept refused" false
    (Paxos.Acceptor.receive_accept a ~gid:1 ~ballot:1 ~value:false);
  (match Paxos.Acceptor.receive_prepare a ~gid:1 ~ballot:2 with
  | Paxos.Acceptor.Rejected -> ()
  | Paxos.Acceptor.Promised _ -> Alcotest.fail "equal ballot re-promised");
  Alcotest.(check (option (pair int bool))) "vote unchanged" (Some (0, true))
    (Paxos.Acceptor.accepted a ~gid:1);
  (* the promised ballot itself may still vote *)
  Alcotest.(check bool) "promised ballot accepts" true
    (Paxos.Acceptor.receive_accept a ~gid:1 ~ballot:2 ~value:false);
  Alcotest.(check (option (pair int bool))) "higher vote wins" (Some (2, false))
    (Paxos.Acceptor.accepted a ~gid:1);
  (* instances are per gid *)
  (match Paxos.Acceptor.receive_prepare a ~gid:9 ~ballot:1 with
  | Paxos.Acceptor.Promised None -> ()
  | _ -> Alcotest.fail "fresh gid not fresh")

(* --- quorum durability with a replica down -------------------------------- *)

let test_replicate_with_acceptor_down () =
  (* F = 1 of a 3-group down: the ballot-0 round still reaches a quorum and
     unblocks the leader; the crashed acceptor's fiber settles after its
     restart, so the engine drains clean. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  let p = Paxos.install fed ~acceptors:3 in
  let gid = Federation.fresh_gid fed in
  in_sim eng (fun () ->
      Site.crash_for (Federation.site fed "s2") ~duration:50.0;
      Paxos.replicate p ~gid ~commit:true;
      Alcotest.(check bool) "quorum reached before the restart" true
        (Sim.now eng < 50.0));
  Alcotest.(check (option bool)) "quorum remembers commit" (Some true)
    (Paxos.read_decision p ~gid);
  Alcotest.(check int) "one round" 1 (Paxos.rounds p);
  (* after the drain the restarted replica voted too *)
  Alcotest.(check int) "all three replicas forced" 3 (Paxos.acceptor_forces p)

let test_protocol_runs_over_paxos () =
  (* A full 2PC round with the replicator installed: committed, decision
     durable at the group, and not a single coordinator log force. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  let p = Paxos.install fed ~acceptors:3 in
  load_accounts fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Tpc.run fed (spec fed [ ("s0", 5); ("s1", -5) ])) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "no coordinator force" 0 (Federation.central_log_forces fed);
  Alcotest.(check int) "one accept round" 1 (Paxos.rounds p);
  Alcotest.(check (option bool)) "group remembers commit" (Some true)
    (Paxos.read_decision p ~gid:1);
  Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed)

(* --- leader failover ------------------------------------------------------ *)

(* An in-doubt transaction: journal open, both branches prepared, nothing
   decided in the (dead) leader's own log. *)
let prepared_in_doubt fed =
  let gid = Federation.fresh_gid fed in
  Federation.journal_open_routed fed ~sites:[ "s0"; "s1" ] ~gid ~protocol:"2pc";
  let prep site_name delta =
    let db = Site.db (Federation.site fed site_name) in
    let txn = Db.begin_txn db in
    Result.get_ok (Db.increment db txn ~key:"x" ~delta);
    Result.get_ok (Db.prepare db txn);
    Federation.journal_branch fed ~gid ~site:site_name ~txn_id:(Db.txn_id txn);
    txn
  in
  let t0 = prep "s0" 5 in
  let t1 = prep "s1" (-5) in
  (gid, t0, t1)

let test_failover_completes_replicated_commit () =
  (* The leader replicated commit to the group and died before writing its
     own log or telling any branch. The new leader must learn the value
     from the quorum (phase 1), re-propose it at a higher ballot and push
     the commit — the transaction finishes without the old leader. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  let p = Paxos.install fed ~acceptors:3 in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      let gid, t0, t1 = prepared_in_doubt fed in
      Paxos.replicate p ~gid ~commit:true;
      Alcotest.(check (option bool)) "leader log silent" None
        (Federation.decision fed ~gid);
      Central_recovery.crash fed;
      fed.Federation.leader_failover ~gid;
      (* the failover fiber runs after its delay; wait it out *)
      Fiber.sleep eng 200.0;
      Alcotest.(check bool) "s0 committed" true (Db.state t0 = `Committed);
      Alcotest.(check bool) "s1 committed" true (Db.state t1 = `Committed);
      Alcotest.(check (option bool)) "decision logged by the new leader"
        (Some true) (Federation.decision fed ~gid));
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "failover counted" 1 (Paxos.failovers p);
  Alcotest.(check bool) "recovery ballot ran" true (Paxos.rounds p >= 2);
  Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed)

let test_failover_presumes_abort_on_silent_quorum () =
  (* The leader died before the accept round: no acceptor ever voted, so
     the new leader is free to choose and presumes abort. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  let p = Paxos.install fed ~acceptors:3 in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      let gid, t0, t1 = prepared_in_doubt fed in
      Central_recovery.crash fed;
      fed.Federation.leader_failover ~gid;
      Fiber.sleep eng 200.0;
      let aborted t = match Db.state t with `Aborted _ -> true | _ -> false in
      Alcotest.(check bool) "s0 rolled back" true (aborted t0);
      Alcotest.(check bool) "s1 rolled back" true (aborted t1);
      Alcotest.(check (option bool)) "abort logged" (Some false)
        (Federation.decision fed ~gid);
      Alcotest.(check (option bool)) "abort durable at the group" (Some false)
        (Paxos.read_decision p ~gid));
  Alcotest.(check (option int)) "s0 unchanged" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 unchanged" (Some 100) (value fed "s1" "x");
  Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed)

let test_failover_noop_on_settled_gid () =
  (* A failover raced by the transaction finishing normally must leave
     everything alone (and drive no recovery ballot). *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  let p = Paxos.install fed ~acceptors:3 in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      let outcome = Tpc.run fed (spec fed [ ("s0", 5); ("s1", -5) ]) in
      Alcotest.check outcome_testable "committed" Global.Committed outcome;
      let rounds_before = Paxos.rounds p in
      fed.Federation.leader_failover ~gid:1;
      Fiber.sleep eng 200.0;
      Alcotest.(check int) "no recovery ballot" rounds_before (Paxos.rounds p));
  Alcotest.(check (option int)) "value stable" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option bool)) "decision stable" (Some true)
    (Federation.decision fed ~gid:1)

(* --- restart recovery over acceptor logs ---------------------------------- *)

let test_recover_consults_quorum_and_stays_idempotent () =
  (* Restart recovery (the old path, no failover) finds an Executing entry
     whose decision lives only at the acceptor group: it must complete the
     commit — not presume abort — and a second pass must find nothing. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  let p = Paxos.install fed ~acceptors:3 in
  load_accounts fed [ ("x", 100) ];
  in_sim eng (fun () ->
      let gid, t0, _t1 = prepared_in_doubt fed in
      Paxos.replicate p ~gid ~commit:true;
      Central_recovery.crash fed;
      let s = Central_recovery.recover fed in
      Alcotest.(check int) "entry recovered" 1 s.entries_recovered;
      Alcotest.(check bool) "committed from the quorum" true
        (Db.state t0 = `Committed);
      let again = Central_recovery.recover fed in
      Alcotest.(check int) "second pass finds nothing" 0 again.entries_recovered);
  Alcotest.(check (option int)) "s0 credited" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 debited" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "journal drained" 0 (Federation.total_journal_entries fed)

(* --- configuration validation --------------------------------------------- *)

let test_group_size_validated () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  let eng = Sim.create () in
  let fed = make_fed eng in
  Alcotest.(check bool) "even group refused" true
    (invalid (fun () -> Paxos.install fed ~acceptors:2));
  Alcotest.(check bool) "group larger than the federation refused" true
    (invalid (fun () -> Paxos.install fed ~acceptors:5));
  Alcotest.(check bool) "runner refuses even acceptors" true
    (invalid (fun () -> Runner.run { Runner.default with acceptors = 2 }));
  Alcotest.(check bool) "runner refuses acceptors > sites" true
    (invalid (fun () ->
         Runner.run { Runner.default with n_sites = 3; acceptors = 5 }))

(* --- acceptors=1 is the single-coordinator system ------------------------- *)

let test_acceptors1_report_identical () =
  (* acceptors = 1 installs nothing: two runs of the same config are
     byte-identical and every paxos column is zero — the report equality
     the CI byte-identity diff checks end to end. *)
  let cfg = { Runner.default with n_txns = 60; concurrency = 8; acceptors = 1 } in
  let r1 = Runner.run cfg in
  let r2 = Runner.run cfg in
  Alcotest.(check bool) "reports equal" true (r1 = r2);
  Alcotest.(check int) "no paxos rounds" 0 r1.Runner.paxos_rounds;
  Alcotest.(check int) "no acceptor forces" 0 r1.Runner.paxos_acceptor_forces;
  Alcotest.(check int) "no failovers" 0 r1.Runner.paxos_failovers

(* --- equivalence (QCheck2) ------------------------------------------------ *)

(* Over protocols and seeds, on the fixed-spec fault-free workload: the
   replicated decision log changes not a single outcome — acceptors=3
   produces byte-identical outcome lists to acceptors=1, conserves money
   and stays serializable, while actually driving accept rounds. *)
let prop_paxos_outcomes_equal_single_coordinator =
  let open QCheck2 in
  let gen =
    Gen.(
      let* protocol = oneofl Protocol.all in
      let* seed = 1 -- 1000 in
      return (protocol, seed))
  in
  let print (protocol, seed) =
    Printf.sprintf "protocol=%s seed=%d" (Protocol.name protocol) seed
  in
  QCheck2.Test.make ~name:"paxos outcomes equal single-coordinator outcomes"
    ~count:25 ~print gen (fun (protocol, seed) ->
      let run acceptors =
        Overhead.run
          {
            Overhead.default with
            protocol;
            seed = Int64.of_int seed;
            n_txns = 40;
            acceptors;
          }
      in
      let base = run 1 in
      let paxos = run 3 in
      if base.Overhead.outcomes <> paxos.Overhead.outcomes then
        QCheck2.Test.fail_reportf "outcomes diverged";
      if not (paxos.Overhead.money_conserved && paxos.Overhead.serializable) then
        QCheck2.Test.fail_reportf "paxos run broke an invariant";
      if base.Overhead.paxos_acceptor_forces <> 0 then
        QCheck2.Test.fail_reportf "acceptors=1 forced an acceptor log";
      if paxos.Overhead.committed > 0 && paxos.Overhead.paxos_acceptor_forces = 0
      then QCheck2.Test.fail_reportf "acceptors=3 never forced an acceptor log";
      true)

(* Restart recovery stays idempotent when the decision survives only in
   acceptor logs, whatever subset of in-doubt transactions got replicated. *)
let prop_recovery_idempotent_with_acceptor_logs =
  let open QCheck2 in
  let gen =
    Gen.(
      let* n_txns = 1 -- 5 in
      let* mask = 0 -- 31 in
      return (n_txns, mask))
  in
  let print (n_txns, mask) = Printf.sprintf "txns=%d mask=%d" n_txns mask in
  QCheck2.Test.make ~name:"double recovery no-op over acceptor logs" ~count:30
    ~print gen (fun (n_txns, mask) ->
      let eng = Sim.create () in
      let fed = make_fed eng in
      let p = Paxos.install fed ~acceptors:3 in
      load_accounts fed [ ("x", 100) ];
      in_sim eng (fun () ->
          for i = 0 to n_txns - 1 do
            let gid, _, _ = prepared_in_doubt fed in
            (* replicate commit for the masked subset; leave the rest
               in doubt with a silent quorum (presumed abort) *)
            if (mask lsr i) land 1 = 1 then Paxos.replicate p ~gid ~commit:true
          done;
          Central_recovery.crash fed;
          let s1 = Central_recovery.recover fed in
          if s1.entries_recovered <> n_txns then
            QCheck2.Test.fail_reportf "recovered %d of %d" s1.entries_recovered
              n_txns;
          let s2 = Central_recovery.recover fed in
          if
            s2.entries_recovered <> 0 || s2.decisions_pushed <> 0
            || s2.locals_aborted <> 0 || s2.branches_redone <> 0
            || s2.branches_undone <> 0
          then QCheck2.Test.fail_reportf "second recovery repaired again");
      Federation.total_journal_entries fed = 0)

(* --- watchdog silence on clean Paxos runs (satellite: monitor tuning) ----- *)

let test_clean_paxos_run_is_monitor_silent () =
  (* A fault-free plan under acceptors=3: zero violations and not a single
     monitor trip — replication latency and quorum waits must not look like
     stuck transactions to the watchdog. *)
  List.iter
    (fun protocol ->
      let o = Campaign.run_plan ~acceptors:3 ~protocol Plan.empty in
      Alcotest.(check int)
        ("violations under " ^ Protocol.name protocol)
        0
        (List.length o.Campaign.violations);
      Alcotest.(check int)
        ("monitor trips under " ^ Protocol.name protocol)
        0
        (List.length o.Campaign.trips))
    Protocol.all

let test_leader_failover_not_stuck () =
  (* A central crash under Paxos triggers a failover pause; the widened
     watchdog horizon must not read it as a stuck transaction, and the
     invariants must hold through the takeover. *)
  let plan =
    { Plan.plan_seed = 0L; events = [ Plan.Central_crash { txn = 3; phase_idx = 1 } ] }
  in
  let o = Campaign.run_plan ~acceptors:3 ~protocol:Protocol.Two_phase plan in
  Alcotest.(check int) "no violations" 0 (List.length o.Campaign.violations);
  Alcotest.(check int) "no monitor trips" 0 (List.length o.Campaign.trips);
  Alcotest.(check int) "the injected crash killed one coordinator" 1 o.Campaign.killed

(* --- duplication accounting (satellite: Link.rpc audit) ------------------- *)

let test_single_duplication_event_counts_once () =
  (* One armed Duplication event must bump
     icdb_fault_injected_total{duplication} exactly once, duplicated
     deliveries and journal-close evictions notwithstanding. *)
  let registry = Registry.create () in
  let plan =
    {
      Plan.plan_seed = 0L;
      events =
        [ Plan.Duplication { site = 0; at = 5.0; duration = 100.0; probability = 0.9 } ];
    }
  in
  let o = Campaign.run_plan ~registry ~protocol:Protocol.Two_phase plan in
  Alcotest.(check int) "no violations" 0 (List.length o.Campaign.violations);
  Alcotest.(check int) "duplication injected once" 1
    (Registry.count
       (Registry.counter registry ~labels:[ ("kind", "duplication") ]
          "icdb_fault_injected_total"))

(* --- plan generator ------------------------------------------------------- *)

let test_plan_generator_extends_classes () =
  (* The Paxos generator draws acceptor crashes; the default one never
     does, and keeps reproducing historical plans byte for byte. *)
  let with_acceptors =
    List.init 200 (fun i ->
        Plan.generate ~acceptors:3 ~seed:(Int64.of_int i) ~n_sites:4 ~n_txns:30
          ~horizon:300.0 ())
  in
  let has_acceptor_crash p =
    List.exists (fun e -> Plan.classify e = "acceptor-crash") p.Plan.events
  in
  Alcotest.(check bool) "some plans carry acceptor crashes" true
    (List.exists has_acceptor_crash with_acceptors);
  let default =
    List.init 200 (fun i ->
        Plan.generate ~seed:(Int64.of_int i) ~n_sites:4 ~n_txns:30 ~horizon:300.0 ())
  in
  Alcotest.(check bool) "default generator never draws them" false
    (List.exists has_acceptor_crash default);
  let explicit_one =
    List.init 200 (fun i ->
        Plan.generate ~acceptors:1 ~seed:(Int64.of_int i) ~n_sites:4 ~n_txns:30
          ~horizon:300.0 ())
  in
  Alcotest.(check bool) "acceptors=1 generator is the default one" true
    (explicit_one = default)

(* --- availability lab ----------------------------------------------------- *)

let test_a1_blocking_verdict () =
  (* The A1 part-B scenario in miniature: under the scripted F=1
     leader+acceptor crash, the Paxos run settles the victim mid-run, the
     single-coordinator baseline only at post-run restart recovery. *)
  let base = Availability.blocking_run ~acceptors:1 ~n_txns:30 ~seed:42L in
  let paxos = Availability.blocking_run ~acceptors:3 ~n_txns:30 ~seed:42L in
  Alcotest.(check bool) "baseline blocks until recovery" false
    base.Availability.br_resolved_mid_run;
  Alcotest.(check bool) "paxos resolves mid-run" true
    paxos.Availability.br_resolved_mid_run;
  Alcotest.(check bool) "paxos window is shorter" true
    (paxos.Availability.br_close_time -. paxos.Availability.br_crash_time
    < base.Availability.br_close_time -. base.Availability.br_crash_time)

(* --- acceptor chaos campaign ---------------------------------------------- *)

let test_acceptor_chaos_campaign () =
  (* 30 plans x all six protocols with acceptor crashes and leader
     failovers in the mix: zero invariant violations, zero monitor trips. *)
  let stats = Campaign.run_campaign ~plans:30 ~acceptors:3 Protocol.all in
  Alcotest.(check int) "six protocols" 6 (List.length stats);
  List.iter
    (fun (s : Campaign.protocol_stats) ->
      Alcotest.(check bool)
        ("acceptor-crash events drawn for " ^ Protocol.name s.cp_protocol)
        true
        (match List.assoc_opt "acceptor-crash" s.cp_by_class with
        | Some n -> n > 0
        | None -> false);
      Alcotest.(check (list (triple string int (float 0.0))))
        ("monitor silent for " ^ Protocol.name s.cp_protocol)
        [] s.cp_trips)
    stats;
  Alcotest.(check int) "zero violations" 0 (Campaign.total_violations stats)

let () =
  Alcotest.run "icdb paxos"
    [
      ( "acceptor",
        [
          Alcotest.test_case "ballot rules" `Quick test_acceptor_ballot_rules;
          Alcotest.test_case "group size validated" `Quick test_group_size_validated;
        ] );
      ( "replication",
        [
          Alcotest.test_case "quorum durable with a replica down" `Quick
            test_replicate_with_acceptor_down;
          Alcotest.test_case "2pc commits over the group" `Quick
            test_protocol_runs_over_paxos;
        ] );
      ( "failover",
        [
          Alcotest.test_case "completes a replicated commit" `Quick
            test_failover_completes_replicated_commit;
          Alcotest.test_case "presumes abort on a silent quorum" `Quick
            test_failover_presumes_abort_on_silent_quorum;
          Alcotest.test_case "no-op on a settled gid" `Quick
            test_failover_noop_on_settled_gid;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "consults the quorum, idempotent" `Quick
            test_recover_consults_quorum_and_stays_idempotent;
          QCheck_alcotest.to_alcotest prop_recovery_idempotent_with_acceptor_logs;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "acceptors=1 report identical and paxos-free" `Quick
            test_acceptors1_report_identical;
          QCheck_alcotest.to_alcotest prop_paxos_outcomes_equal_single_coordinator;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "clean paxos runs are monitor-silent" `Quick
            test_clean_paxos_run_is_monitor_silent;
          Alcotest.test_case "leader failover is not stuck" `Quick
            test_leader_failover_not_stuck;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "duplication event counts once" `Quick
            test_single_duplication_event_counts_once;
          Alcotest.test_case "plan generator gains acceptor crashes" `Quick
            test_plan_generator_extends_classes;
          Alcotest.test_case "30 plans x 6 protocols, acceptors=3" `Slow
            test_acceptor_chaos_campaign;
        ] );
      ( "availability",
        [ Alcotest.test_case "a1 blocking verdict" `Quick test_a1_blocking_verdict ] );
    ]
