(* Tests for Icdb_obs: the metrics registry, the span tracer, the
   exporters (golden outputs), and the end-to-end properties of a traced
   workload — span well-formedness and cross-domain determinism. *)

module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span
module Export = Icdb_obs.Export
module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol

(* --- registry ------------------------------------------------------------- *)

let test_counter_get_or_create () =
  let r = Registry.create () in
  let a = Registry.counter r "icdb_a_total" in
  let a' = Registry.counter r "icdb_a_total" in
  Registry.inc a;
  Registry.inc a' ~by:4;
  Alcotest.(check int) "same cell" 5 (Registry.count a);
  (* Label order is irrelevant: keys are (name, sorted labels). *)
  let l1 = Registry.counter r ~labels:[ ("x", "1"); ("y", "2") ] "icdb_b_total" in
  let l2 = Registry.counter r ~labels:[ ("y", "2"); ("x", "1") ] "icdb_b_total" in
  Registry.inc l1;
  Alcotest.(check int) "label order irrelevant" 1 (Registry.count l2);
  (* Distinct label values are distinct cells. *)
  let l3 = Registry.counter r ~labels:[ ("x", "other") ] "icdb_b_total" in
  Alcotest.(check int) "distinct labels distinct" 0 (Registry.count l3)

let test_histogram_stats () =
  let r = Registry.create () in
  let h = Registry.histogram r "icdb_h" in
  List.iter (fun i -> Registry.observe h (float_of_int i)) (List.init 100 (fun i -> i + 1));
  let s = Registry.hist_snapshot h in
  Alcotest.(check int) "count" 100 s.h_count;
  Alcotest.(check (float 1e-9)) "sum" 5050.0 s.h_sum;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.h_mean;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.h_max;
  Alcotest.(check bool) "p50 sane" true (s.h_p50 >= 50.0 && s.h_p50 <= 51.0);
  Alcotest.(check bool) "p95 sane" true (s.h_p95 >= 95.0 && s.h_p95 <= 96.0);
  let empty = Registry.hist_snapshot (Registry.histogram r "icdb_empty") in
  Alcotest.(check int) "empty count" 0 empty.h_count;
  Alcotest.(check (float 0.0)) "empty mean" 0.0 empty.h_mean

let test_histogram_bucketing () =
  (* Log-bucketed backend: count/sum/mean/max exact, quantiles within one
     sub-bucket (upper bound, <= 1/32 relative error) across magnitudes. *)
  let r = Registry.create () in
  let h = Registry.histogram r "icdb_wide" in
  List.iter
    (fun i -> Registry.observe h (float_of_int i))
    (List.init 10_000 (fun i -> i + 1));
  let s = Registry.hist_snapshot h in
  Alcotest.(check int) "count" 10_000 s.h_count;
  Alcotest.(check (float 1e-6)) "sum" 50_005_000.0 s.h_sum;
  Alcotest.(check (float 1e-9)) "max exact" 10_000.0 s.h_max;
  Alcotest.(check bool) "p50 within a bucket" true
    (s.h_p50 >= 5_000.0 && s.h_p50 <= 5_000.0 *. 1.04);
  Alcotest.(check bool) "p95 within a bucket" true
    (s.h_p95 >= 9_500.0 && s.h_p95 <= 9_500.0 *. 1.04);
  (* Tiny magnitudes land in the negative-exponent octaves, same bound. *)
  let tiny = Registry.histogram r "icdb_tiny" in
  List.iter
    (fun i -> Registry.observe tiny (float_of_int i *. 1e-6))
    (List.init 1_000 (fun i -> i + 1));
  let st = Registry.hist_snapshot tiny in
  Alcotest.(check bool) "small p50 within a bucket" true
    (st.h_p50 >= 5.0e-4 && st.h_p50 <= 5.0e-4 *. 1.04);
  (* Non-positive observations count but sit below every bucket. *)
  let np = Registry.histogram r "icdb_nonpos" in
  Registry.observe np (-3.0);
  Registry.observe np 0.0;
  Registry.observe np 8.0;
  let sn = Registry.hist_snapshot np in
  Alcotest.(check int) "nonpos counted" 3 sn.h_count;
  Alcotest.(check (float 1e-9)) "min is the negative" (-3.0)
    (Registry.hist_percentile np 1.0);
  Alcotest.(check (float 1e-9)) "top is the positive" 8.0 sn.h_max;
  Registry.clear_histogram np;
  Alcotest.(check int) "clear resets" 0 (Registry.hist_count np)

let test_snapshot_sorted () =
  let r = Registry.create () in
  ignore (Registry.counter r "zzz_total");
  ignore (Registry.counter r "aaa_total");
  ignore (Registry.counter r ~labels:[ ("k", "b") ] "mmm_total");
  ignore (Registry.counter r ~labels:[ ("k", "a") ] "mmm_total");
  let names =
    List.map
      (fun ((k : Registry.key), _) -> (k.name, k.labels))
      (Registry.snapshot r).Registry.counters
  in
  Alcotest.(check bool) "sorted" true (names = List.sort compare names)

(* --- tracer --------------------------------------------------------------- *)

let test_disabled_tracer () =
  let t = Tracer.create ~clock:(fun () -> 0.0) () in
  let id = Tracer.begin_span t ~actor:"central" (Span.Mark "x") in
  Alcotest.(check int) "no-op handle" (-1) id;
  Tracer.end_span t id;
  Tracer.instant t ~actor:"central" (Span.Mark "y");
  Tracer.complete t ~actor:"central" ~start:0.0 (Span.Mark "z");
  Alcotest.(check int) "nothing recorded" 0 (Tracer.length t)

let test_ring_wraparound () =
  let now = ref 0.0 in
  let t = Tracer.create ~enabled:true ~limit:8 ~clock:(fun () -> !now) () in
  Alcotest.(check (option int)) "capacity" (Some 8) (Tracer.capacity t);
  for i = 1 to 20 do
    now := float_of_int i;
    Tracer.instant t ~actor:"central" (Span.Mark (Printf.sprintf "m%d" i))
  done;
  Alcotest.(check int) "ring full" 8 (Tracer.length t);
  Alcotest.(check int) "overwrites counted" 12 (Tracer.dropped t);
  (* The ring holds exactly the newest eight, oldest first. *)
  let names = ref [] in
  Tracer.iter t (fun ev ->
      match ev with
      | Tracer.Instant { kind = Span.Mark m; _ } -> names := m :: !names
      | _ -> ());
  Alcotest.(check (list string)) "newest events survive"
    (List.init 8 (fun i -> Printf.sprintf "m%d" (20 - i)))
    !names;
  Tracer.clear t;
  Alcotest.(check int) "clear empties" 0 (Tracer.length t);
  Alcotest.(check int) "clear resets drop count" 0 (Tracer.dropped t)

let test_sampler_gates_spans () =
  let t = Tracer.create ~enabled:true ~clock:(fun () -> 0.0) () in
  Tracer.set_sampler t (Some (function Span.Mark _ -> false | _ -> true));
  let id = Tracer.begin_span t ~actor:"a" (Span.Mark "dropped") in
  Alcotest.(check int) "sampled-out begin is a no-op handle" (-1) id;
  Tracer.end_span t id;
  Tracer.instant t ~actor:"a" (Span.Mark "dropped too");
  Alcotest.(check int) "nothing stored" 0 (Tracer.length t);
  let kept = Tracer.begin_span t ~actor:"a" (Span.Txn { gid = 1; protocol = "2pc" }) in
  Alcotest.(check int) "kept span ids start at 0" 0 kept;
  Tracer.end_span t kept;
  Alcotest.(check int) "kept span stored" 2 (Tracer.length t)

(* A small hand-built trace shared by the exporter golden tests. *)
let golden_tracer () =
  let now = ref 0.0 in
  let t = Tracer.create ~enabled:true ~clock:(fun () -> !now) () in
  let root = Tracer.begin_span t ~actor:"central" (Span.Txn { gid = 1; protocol = "2pc" }) in
  now := 1.0;
  let ph = Tracer.begin_span t ~parent:root ~actor:"central" (Span.Phase { gid = 1; phase = Span.Vote }) in
  Tracer.instant t ~actor:"s0" (Span.Message { label = "prepare"; direction = Span.Send });
  now := 2.0;
  Tracer.end_span t ph;
  Tracer.complete t ~actor:"s0" ~start:0.5 (Span.Lock_hold { table = "s0"; obj = "x" });
  Tracer.instant t ~actor:"central" (Span.Decision { gid = 1; commit = true });
  now := 3.0;
  Tracer.end_span t root;
  t

let test_golden_chrome_trace () =
  let expected =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
     {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"icdb\"}},\n\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"central\"}},\n\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"s0\"}},\n\
     {\"cat\":\"txn\",\"name\":\"g1 2pc\",\"ph\":\"b\",\"id\":0,\"pid\":1,\"tid\":0,\"ts\":0.000},\n\
     {\"cat\":\"phase\",\"name\":\"g1 vote\",\"ph\":\"b\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":1.000},\n\
     {\"cat\":\"msg\",\"name\":\"send prepare\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":1.000},\n\
     {\"cat\":\"phase\",\"name\":\"g1 vote\",\"ph\":\"e\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":2.000},\n\
     {\"cat\":\"lock\",\"name\":\"lock-hold x\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.500,\"dur\":1.500},\n\
     {\"cat\":\"decision\",\"name\":\"g1 decision:commit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":2.000},\n\
     {\"cat\":\"txn\",\"name\":\"g1 2pc\",\"ph\":\"e\",\"id\":0,\"pid\":1,\"tid\":0,\"ts\":3.000}\n\
     ]}\n"
  in
  Alcotest.(check string) "chrome trace" expected (Export.chrome_trace (golden_tracer ()))

let golden_registry () =
  let r = Registry.create () in
  let txns = Registry.counter r "icdb_txns_total" in
  Registry.inc txns;
  Registry.inc txns;
  let msgs = Registry.counter r ~labels:[ ("site", "s0") ] "icdb_messages_total" in
  Registry.inc msgs ~by:3;
  let h =
    Registry.histogram r ~labels:[ ("phase", "vote"); ("protocol", "2pc") ] "icdb_phase_time"
  in
  Registry.observe h 2.5;
  r

let test_golden_metrics_json () =
  let expected =
    "{\n\
    \  \"counters\": [\n\
    \    {\"name\":\"icdb_messages_total\",\"labels\":{\"site\":\"s0\"},\"value\":3},\n\
    \    {\"name\":\"icdb_txns_total\",\"labels\":{},\"value\":2}\n\
    \  ],\n\
    \  \"histograms\": [\n\
    \    {\"name\":\"icdb_phase_time\",\"labels\":{\"phase\":\"vote\",\"protocol\":\"2pc\"},\"count\":1,\"sum\":2.500,\"mean\":2.500,\"p50\":2.500,\"p95\":2.500,\"max\":2.500}\n\
    \  ]\n\
     }\n"
  in
  Alcotest.(check string) "metrics json" expected (Export.metrics_json (golden_registry ()))

let test_golden_prometheus () =
  let expected =
    "# TYPE icdb_messages_total counter\n\
     icdb_messages_total{site=\"s0\"} 3\n\
     # TYPE icdb_txns_total counter\n\
     icdb_txns_total 2\n\
     # TYPE icdb_phase_time summary\n\
     icdb_phase_time{phase=\"vote\",protocol=\"2pc\",quantile=\"0.5\"} 2.500\n\
     icdb_phase_time{phase=\"vote\",protocol=\"2pc\",quantile=\"0.95\"} 2.500\n\
     icdb_phase_time{phase=\"vote\",protocol=\"2pc\",quantile=\"1\"} 2.500\n\
     icdb_phase_time_sum{phase=\"vote\",protocol=\"2pc\"} 2.500\n\
     icdb_phase_time_count{phase=\"vote\",protocol=\"2pc\"} 1\n"
  in
  Alcotest.(check string) "prometheus" expected (Export.prometheus (golden_registry ()))

let test_json_escape () =
  Alcotest.(check string) "escape" "a\\\"b\\\\c\\nd" (Export.json_escape "a\"b\\c\nd")

(* --- streaming sink ------------------------------------------------------- *)

(* Replay a tracer's stored events through a sink into a buffer. *)
let stream_of_tracer t =
  let b = Buffer.create 256 in
  let sink = Icdb_obs.Sink.create ~write:(Buffer.add_string b) in
  Tracer.iter t (Icdb_obs.Sink.on_event sink);
  Icdb_obs.Sink.close sink;
  (Buffer.contents b, sink)

let test_streaming_sink_golden () =
  (* Same events as the batch golden; thread_name metadata is interleaved at
     first actor sight instead of hoisted (single-pass, still spec-valid). *)
  let expected =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
     {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"icdb\"}},\n\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"central\"}},\n\
     {\"cat\":\"txn\",\"name\":\"g1 2pc\",\"ph\":\"b\",\"id\":0,\"pid\":1,\"tid\":0,\"ts\":0.000},\n\
     {\"cat\":\"phase\",\"name\":\"g1 vote\",\"ph\":\"b\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":1.000},\n\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"s0\"}},\n\
     {\"cat\":\"msg\",\"name\":\"send prepare\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":1.000},\n\
     {\"cat\":\"phase\",\"name\":\"g1 vote\",\"ph\":\"e\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":2.000},\n\
     {\"cat\":\"lock\",\"name\":\"lock-hold x\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.500,\"dur\":1.500},\n\
     {\"cat\":\"decision\",\"name\":\"g1 decision:commit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":2.000},\n\
     {\"cat\":\"txn\",\"name\":\"g1 2pc\",\"ph\":\"e\",\"id\":0,\"pid\":1,\"tid\":0,\"ts\":3.000}\n\
     ]}\n"
  in
  let out, sink = stream_of_tracer (golden_tracer ()) in
  Alcotest.(check string) "streamed trace" expected out;
  Alcotest.(check int) "event count" 7 (Icdb_obs.Sink.event_count sink);
  Alcotest.(check int) "byte count" (String.length out)
    (Icdb_obs.Sink.byte_count sink)

(* A trace whose transaction span never ends (crashed coordinator). *)
let truncated_tracer () =
  let now = ref 0.0 in
  let t = Tracer.create ~enabled:true ~clock:(fun () -> !now) () in
  let root = Tracer.begin_span t ~actor:"central" (Span.Txn { gid = 9; protocol = "2pc" }) in
  now := 1.0;
  let ph =
    Tracer.begin_span t ~parent:root ~actor:"central"
      (Span.Phase { gid = 9; phase = Span.Vote })
  in
  now := 2.5;
  Tracer.end_span t ph;
  (* root never ends *)
  t

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_crash_truncated_spans () =
  let t = truncated_tracer () in
  let chrome = Export.chrome_trace t in
  Alcotest.(check bool) "batch export marks truncation" true
    (contains chrome "crash-truncated");
  (* The synthetic end closes the span at the last recorded time. *)
  Alcotest.(check bool) "synthetic end at last time" true
    (contains chrome
       "{\"cat\":\"txn\",\"name\":\"g9 2pc\",\"ph\":\"e\",\"id\":0,\"pid\":1,\"tid\":0,\"ts\":2.500}");
  let tree = Export.span_tree t in
  Alcotest.(check bool) "span tree marks truncation" true
    (contains tree "(crash-truncated)");
  let streamed, _ = stream_of_tracer t in
  Alcotest.(check bool) "sink closes dangling spans" true
    (contains streamed "crash-truncated");
  Alcotest.(check bool) "sink output well-terminated" true
    (let n = String.length streamed in
     n >= 4 && String.sub streamed (n - 4) 4 = "\n]}\n")

let test_flight_dump_format () =
  let t = truncated_tracer () in
  let dump = Export.flight_dump t in
  Alcotest.(check bool) "header" true (contains dump "flight recorder: 3 events retained");
  Alcotest.(check bool) "txn event present" true (contains dump "g9 2pc");
  Alcotest.(check bool) "dangling span reported" true (contains dump "1 span(s) still open")

(* --- sampling ------------------------------------------------------------- *)

let test_sampling_deterministic_and_bounded () =
  let module Sampling = Icdb_obs.Sampling in
  (* Pure in (seed, rate, gid): the same triple always agrees. *)
  for gid = 0 to 99 do
    Alcotest.(check bool) "keep is a pure function"
      (Sampling.keep ~seed:42L ~rate:0.3 gid)
      (Sampling.keep ~seed:42L ~rate:0.3 gid)
  done;
  Alcotest.(check bool) "rate 1 keeps everything" true
    (List.for_all (Sampling.keep ~seed:7L ~rate:1.0) (List.init 100 Fun.id));
  Alcotest.(check bool) "rate 0 keeps nothing" true
    (List.for_all
       (fun g -> not (Sampling.keep ~seed:7L ~rate:0.0 g))
       (List.init 100 Fun.id));
  let kept = ref 0 in
  for gid = 0 to 9_999 do
    if Icdb_obs.Sampling.keep ~seed:42L ~rate:0.25 gid then incr kept
  done;
  let frac = float_of_int !kept /. 10_000.0 in
  Alcotest.(check bool) "kept fraction near the rate" true
    (frac > 0.22 && frac < 0.28);
  (* The kind filter keeps whole transactions: a kept gid keeps its txn,
     phase, branch and decision spans; outages and marks always pass;
     per-message spam never does at rate < 1. *)
  let f = Sampling.kind_filter ~seed:42L ~rate:0.25 in
  let some_kept = ref false and some_dropped = ref false in
  for gid = 0 to 99 do
    let txn = f (Span.Txn { gid; protocol = "2pc" }) in
    Alcotest.(check bool) "phase follows txn" txn
      (f (Span.Phase { gid; phase = Span.Vote }));
    Alcotest.(check bool) "decision follows txn" txn
      (f (Span.Decision { gid; commit = true }));
    if txn then some_kept := true else some_dropped := true
  done;
  Alcotest.(check bool) "some transactions kept" true !some_kept;
  Alcotest.(check bool) "some transactions dropped" true !some_dropped;
  Alcotest.(check bool) "outages always kept" true (f (Span.Outage { site = "s0" }));
  Alcotest.(check bool) "marks always kept" true (f (Span.Mark "note"));
  Alcotest.(check bool) "messages dropped when sampling" false
    (f (Span.Message { label = "prepare"; direction = Span.Send }))

(* --- end-to-end: a traced chaos workload ---------------------------------- *)

let traced_run ?(seed = 7L) () =
  let registry = Registry.create () in
  let tracer = Tracer.create ~enabled:true ~clock:(fun () -> 0.0) () in
  let report =
    Runner.run ~registry ~tracer
      {
        Runner.default with
        protocol = Protocol.Before;
        seed;
        n_txns = 40;
        concurrency = 6;
        accounts_per_site = 8;
        p_intended_abort = 0.1;
        p_spontaneous = 0.1;
        crash_rate = 2.0;
        crash_duration = 20.0;
      }
  in
  (report, registry, tracer)

let test_span_well_formedness () =
  let _, _, tracer = traced_run () in
  Alcotest.(check bool) "trace non-empty" true (Tracer.length tracer > 0);
  (* Every End matches an earlier Begin, at most once. *)
  let open_ids = Hashtbl.create 64 in
  let last = ref neg_infinity in
  Tracer.iter tracer (fun ev ->
      let record_time =
        match ev with
        | Tracer.Begin { id; time; _ } ->
          Alcotest.(check bool) "fresh id" false (Hashtbl.mem open_ids id);
          Hashtbl.replace open_ids id ();
          time
        | Tracer.End { id; time } ->
          Alcotest.(check bool) "end has open begin" true (Hashtbl.mem open_ids id);
          Hashtbl.remove open_ids id;
          time
        | Tracer.Complete { start; stop; _ } ->
          Alcotest.(check bool) "complete ordered" true (start <= stop);
          stop
        | Tracer.Instant { time; _ } -> time
      in
      (* The recorder only ever reads the engine clock, so record order is
         time order. *)
      Alcotest.(check bool) "monotone record times" true (record_time >= !last);
      last := record_time);
  Alcotest.(check int) "all spans closed" 0 (Hashtbl.length open_ids);
  (* Children nest within their parents. *)
  let spans = Tracer.spans tracer in
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (s : Tracer.span) -> if s.s_id >= 0 then Hashtbl.replace by_id s.s_id s)
    spans;
  List.iter
    (fun (s : Tracer.span) ->
      if s.s_id >= 0 && s.s_parent >= 0 then begin
        match Hashtbl.find_opt by_id s.s_parent with
        | None -> Alcotest.fail "child without recorded parent"
        | Some p ->
          Alcotest.(check bool) "child starts in parent" true (s.s_start >= p.s_start);
          (match (s.s_stop, p.s_stop) with
          | Some cs, Some ps ->
            Alcotest.(check bool) "child ends in parent" true (cs <= ps)
          | _ -> ())
      end)
    spans

let test_phase_breakdown_reported () =
  let report, _, _ = traced_run () in
  Alcotest.(check bool) "has execute phase" true
    (List.mem_assoc "execute" report.Runner.phase_breakdown);
  let execute = List.assoc "execute" report.Runner.phase_breakdown in
  Alcotest.(check int) "one execute span per txn" report.Runner.started
    execute.Registry.h_count

let test_deterministic_same_seed () =
  let _, reg1, tr1 = traced_run () in
  let _, reg2, tr2 = traced_run () in
  Alcotest.(check string) "identical trace" (Export.chrome_trace tr1)
    (Export.chrome_trace tr2);
  Alcotest.(check string) "identical metrics" (Export.metrics_json reg1)
    (Export.metrics_json reg2)

let test_deterministic_across_domains () =
  (* The same two seeds, run sequentially and on two parallel domains: every
     export is byte-identical. *)
  let export seed =
    let _, reg, tr = traced_run ~seed () in
    (Export.chrome_trace tr, Export.metrics_json reg)
  in
  let sequential = List.map export [ 7L; 8L ] in
  let parallel =
    Icdb_util.Pool.run ~jobs:2 [ (fun () -> export 7L); (fun () -> export 8L) ]
  in
  List.iter2
    (fun (t1, m1) (t2, m2) ->
      Alcotest.(check string) "trace identical across domains" t1 t2;
      Alcotest.(check string) "metrics identical across domains" m1 m2)
    sequential parallel

let ring_run ?(seed = 7L) () =
  (* The traced chaos workload flown with a flight-recorder ring: far more
     events than capacity, so the ring wraps many times. *)
  let tracer = Tracer.create ~enabled:true ~limit:64 ~clock:(fun () -> 0.0) () in
  let _ =
    Runner.run ~tracer
      {
        Runner.default with
        protocol = Protocol.Before;
        seed;
        n_txns = 40;
        concurrency = 6;
        accounts_per_site = 8;
        p_intended_abort = 0.1;
        p_spontaneous = 0.1;
        crash_rate = 2.0;
        crash_duration = 20.0;
      }
  in
  tracer

let test_ring_deterministic_dump () =
  let t1 = ring_run () and t2 = ring_run () in
  Alcotest.(check bool) "the ring wrapped" true (Tracer.dropped t1 > 0);
  Alcotest.(check int) "ring at capacity" 64 (Tracer.length t1);
  Alcotest.(check string) "same seed, byte-identical flight dump"
    (Export.flight_dump t1) (Export.flight_dump t2);
  Alcotest.(check int) "same drop count" (Tracer.dropped t1) (Tracer.dropped t2)

let sampled_stream seed =
  let b = Buffer.create 4096 in
  let sink = Icdb_obs.Sink.create ~write:(Buffer.add_string b) in
  let tracer = Tracer.create ~enabled:true ~clock:(fun () -> 0.0) () in
  Tracer.set_store tracer false;
  Tracer.set_sink tracer (Some (Icdb_obs.Sink.on_event sink));
  Tracer.set_sampler tracer (Some (Icdb_obs.Sampling.kind_filter ~seed ~rate:0.3));
  let _ =
    Runner.run ~tracer
      { Runner.default with protocol = Protocol.Two_phase; seed; n_txns = 30 }
  in
  Icdb_obs.Sink.close sink;
  Buffer.contents b

let test_sampled_stream_across_domains () =
  (* Head sampling keys on (seed, gid) only, so the streamed trace is
     byte-identical run to run and across parallel domains. *)
  let sequential = List.map sampled_stream [ 7L; 8L ] in
  let parallel =
    Icdb_util.Pool.run ~jobs:2
      [ (fun () -> sampled_stream 7L); (fun () -> sampled_stream 8L) ]
  in
  List.iter2
    (fun s p -> Alcotest.(check string) "sampled stream identical across domains" s p)
    sequential parallel;
  (* And sampling genuinely thinned the stream. *)
  let full = sampled_stream 7L in
  Alcotest.(check bool) "non-trivial output" true (String.length full > 200)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter get-or-create + labels" `Quick
            test_counter_get_or_create;
          Alcotest.test_case "histogram statistics" `Quick test_histogram_stats;
          Alcotest.test_case "histogram log bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled tracer records nothing" `Quick test_disabled_tracer;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "sampler gates spans" `Quick test_sampler_gates_spans;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace golden" `Quick test_golden_chrome_trace;
          Alcotest.test_case "metrics json golden" `Quick test_golden_metrics_json;
          Alcotest.test_case "prometheus golden" `Quick test_golden_prometheus;
          Alcotest.test_case "json escaping" `Quick test_json_escape;
          Alcotest.test_case "streaming sink golden" `Quick test_streaming_sink_golden;
          Alcotest.test_case "crash-truncated spans" `Quick test_crash_truncated_spans;
          Alcotest.test_case "flight dump format" `Quick test_flight_dump_format;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "deterministic and bounded" `Quick
            test_sampling_deterministic_and_bounded;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "span well-formedness" `Quick test_span_well_formedness;
          Alcotest.test_case "phase breakdown in report" `Quick
            test_phase_breakdown_reported;
          Alcotest.test_case "same seed, same trace" `Quick test_deterministic_same_seed;
          Alcotest.test_case "identical across domains" `Quick
            test_deterministic_across_domains;
          Alcotest.test_case "ring dump deterministic" `Quick test_ring_deterministic_dump;
          Alcotest.test_case "sampled stream across domains" `Quick
            test_sampled_stream_across_domains;
        ] );
    ]
